package vocab

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// The text format is indentation based. Top-level (column 0) lines name
// attributes; each additional two spaces (or one tab) of indentation
// descends one level in the value hierarchy. Blank lines and lines
// starting with '#' are ignored. Example:
//
//	data
//	  demographic
//	    address
//	    gender
//	  clinical
//	    referral
//	purpose
//	  treatment

// ParseText reads a vocabulary from its textual representation.
func ParseText(r io.Reader) (*Vocabulary, error) {
	v := New()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)

	type level struct {
		depth int
		value string // "" at attribute level
	}
	var (
		stack   []level
		curAttr *Hierarchy
		lineNo  int
	)
	for sc.Scan() {
		lineNo++
		raw := sc.Text()
		trimmed := strings.TrimSpace(raw)
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		depth, err := indentDepth(raw)
		if err != nil {
			return nil, fmt.Errorf("vocab: line %d: %w", lineNo, err)
		}
		// Values may carry an inline child list: "demographic: address gender".
		name, inline, hasInline := strings.Cut(trimmed, ":")
		name = strings.TrimSpace(name)
		if name == "" {
			return nil, fmt.Errorf("vocab: line %d: missing name", lineNo)
		}

		if depth == 0 {
			h, err := v.AddAttribute(name)
			if err != nil {
				return nil, fmt.Errorf("vocab: line %d: %w", lineNo, err)
			}
			curAttr = h
			stack = stack[:0]
			stack = append(stack, level{depth: 0, value: ""})
		} else {
			if curAttr == nil {
				return nil, fmt.Errorf("vocab: line %d: value %q before any attribute", lineNo, name)
			}
			if depth > stack[len(stack)-1].depth+1 {
				return nil, fmt.Errorf("vocab: line %d: indentation of %q jumps more than one level", lineNo, name)
			}
			for len(stack) > 0 && stack[len(stack)-1].depth >= depth {
				stack = stack[:len(stack)-1]
			}
			if len(stack) == 0 {
				return nil, fmt.Errorf("vocab: line %d: bad indentation for %q", lineNo, name)
			}
			parent := stack[len(stack)-1].value
			if err := curAttr.Add(parent, name); err != nil {
				return nil, fmt.Errorf("vocab: line %d: %w", lineNo, err)
			}
			stack = append(stack, level{depth: depth, value: name})
		}
		if hasInline {
			if curAttr == nil {
				return nil, fmt.Errorf("vocab: line %d: inline values before any attribute", lineNo)
			}
			parent := name
			if depth == 0 {
				parent = ""
			}
			for _, child := range strings.Fields(inline) {
				if err := curAttr.Add(parent, child); err != nil {
					return nil, fmt.Errorf("vocab: line %d: %w", lineNo, err)
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("vocab: read: %w", err)
	}
	return v, nil
}

// ParseTextString is ParseText over a string.
func ParseTextString(s string) (*Vocabulary, error) {
	return ParseText(strings.NewReader(s))
}

func indentDepth(line string) (int, error) {
	spaces := 0
	for _, r := range line {
		switch r {
		case ' ':
			spaces++
		case '\t':
			spaces += 2
		default:
			if spaces%2 != 0 {
				return 0, fmt.Errorf("odd indentation (%d spaces); use two spaces per level", spaces)
			}
			return spaces / 2, nil
		}
	}
	return 0, nil
}

// WriteText writes the vocabulary in the text format accepted by
// ParseText.
func (v *Vocabulary) WriteText(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for _, attr := range v.Attributes() {
		h := v.Hierarchy(attr)
		if _, err := fmt.Fprintln(bw, h.attr); err != nil {
			return err
		}
		var walk func(n *Node, depth int) error
		walk = func(n *Node, depth int) error {
			if _, err := fmt.Fprintf(bw, "%s%s\n", strings.Repeat("  ", depth), n.value); err != nil {
				return err
			}
			for _, c := range n.children {
				if err := walk(c, depth+1); err != nil {
					return err
				}
			}
			return nil
		}
		for _, r := range h.roots {
			if err := walk(r, 1); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// TextString renders the vocabulary in the text format.
func (v *Vocabulary) TextString() string {
	var b strings.Builder
	if err := v.WriteText(&b); err != nil {
		// strings.Builder writes cannot fail.
		panic("vocab: TextString: " + err.Error())
	}
	return b.String()
}

// jsonNode mirrors Node for (de)serialization.
type jsonNode struct {
	Value    string     `json:"value"`
	Children []jsonNode `json:"children,omitempty"`
}

type jsonAttr struct {
	Attr   string     `json:"attr"`
	Values []jsonNode `json:"values,omitempty"`
}

// MarshalJSON encodes the vocabulary as an ordered list of attribute
// hierarchies.
func (v *Vocabulary) MarshalJSON() ([]byte, error) {
	var out []jsonAttr
	for _, attr := range v.Attributes() {
		h := v.Hierarchy(attr)
		var conv func(n *Node) jsonNode
		conv = func(n *Node) jsonNode {
			jn := jsonNode{Value: n.value}
			for _, c := range n.children {
				jn.Children = append(jn.Children, conv(c))
			}
			return jn
		}
		ja := jsonAttr{Attr: h.attr}
		for _, r := range h.roots {
			ja.Values = append(ja.Values, conv(r))
		}
		out = append(out, ja)
	}
	return json.Marshal(out)
}

// UnmarshalJSON decodes a vocabulary produced by MarshalJSON.
func (v *Vocabulary) UnmarshalJSON(data []byte) error {
	var in []jsonAttr
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("vocab: %w", err)
	}
	nv := New()
	for _, ja := range in {
		h, err := nv.AddAttribute(ja.Attr)
		if err != nil {
			return err
		}
		var add func(parent string, jn jsonNode) error
		add = func(parent string, jn jsonNode) error {
			if err := h.Add(parent, jn.Value); err != nil {
				return err
			}
			for _, c := range jn.Children {
				if err := add(jn.Value, c); err != nil {
					return err
				}
			}
			return nil
		}
		for _, root := range ja.Values {
			if err := add("", root); err != nil {
				return err
			}
		}
	}
	// Install the decoded forest field-wise (the Vocabulary carries a
	// mutex and an atomic counter, so the struct itself must not be
	// copied), repointing each hierarchy at its new owner. The
	// generation bumps past both counters so caches keyed on the old
	// vocabulary's generation can never validate against the new one.
	v.mu.Lock()
	for _, h := range nv.attrs {
		h.owner = v
	}
	v.attrs = nv.attrs
	v.order = nv.order
	v.gen.Add(nv.gen.Load() + 1)
	v.mu.Unlock()
	return nil
}
