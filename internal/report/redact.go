package report

import (
	"fmt"
	"strings"

	"repro/internal/audit"
)

// This file holds the sanctioned way to put audit data in front of a
// human. The prima:redact markers below are read by prima-vet's
// phileak analyzer: a value that passed through one of these helpers
// is no longer treated as PHI, so every print/log/error path for
// audit entries is expected to route through here.

// RedactValue masks an identifying string down to its first rune —
// enough for an operator to correlate lines, not enough to identify
// the person or the record.
//
// prima:redact
func RedactValue(s string) string {
	if s == "" {
		return "<none>"
	}
	runes := []rune(s)
	masked := len(runes) - 1
	if masked > 8 {
		masked = 8
	}
	return string(runes[0]) + strings.Repeat("*", masked)
}

// RedactEntry renders an audit entry with every prima:phi field
// masked; timestamps, outcome, role, site, and status stay readable
// because they are what an operator needs to triage.
//
// prima:redact
func RedactEntry(e audit.Entry) string {
	return fmt.Sprintf("{%s %s user=%s data=%s purpose=%s role=%s %s site=%s}",
		e.Time.UTC().Format("2006-01-02T15:04:05Z"), e.Op,
		RedactValue(e.User), RedactValue(e.Data), RedactValue(e.Purpose),
		e.Authorized, e.Status, e.Site)
}

// RedactConflict renders a federation conflict with both entries
// masked.
//
// prima:redact
func RedactConflict(c audit.Conflict) string {
	return fmt.Sprintf("conflict[%s | %s]", RedactEntry(c.A), RedactEntry(c.B))
}
