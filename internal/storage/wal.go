package storage

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"
)

// Group-commit write-ahead log. Records are CRC-framed
// ([u32 length][u32 crc][payload]) inside segment files named
// wal-<firstLSN>.seg; the LSN of a record is implicit in its position
// (segment firstLSN + record index), so frames carry no redundant
// sequence field. Appends land in an in-memory buffer and return
// immediately with their LSN; a single flusher goroutine swaps the
// double buffer, writes the batch, fsyncs once, and wakes every
// committer waiting at or below the batch's last LSN — that one fsync
// amortized over the whole batch is the group commit. Commit callers
// therefore wait at most one commit interval plus one write+fsync.
//
// Recovery reads segments in LSN order verifying each frame CRC. An
// invalid frame at the tail of the final segment is a torn tail —
// the expected wreckage of a crash mid-write — and replay stops
// cleanly there; an invalid frame anywhere else is corruption and
// replay fails loudly. On reopen the torn tail is truncated away so
// new appends never sit behind garbage.

const (
	walMagic      = 0x4c415750 // "PWAL"
	walHeaderSize = 16
	walFrameHead  = 8 // u32 len + u32 crc
)

// WALOptions tunes OpenWAL.
type WALOptions struct {
	// SegmentBytes rolls to a new segment file past this size
	// (default 16 MiB).
	SegmentBytes int64
	// CommitInterval is the group-commit window: how long the flusher
	// gathers appends before the shared fsync (default 2ms; negative
	// means no gathering — flush as soon as there is anything).
	CommitInterval time.Duration
	// NoSync skips fsyncs (benchmark baseline only).
	NoSync bool
	// OpenFile opens segment files; defaults to OpenOSFile.
	OpenFile OpenFileFunc
}

const (
	defaultSegmentBytes   = 16 << 20
	defaultCommitInterval = 2 * time.Millisecond
)

type walSegment struct {
	first uint64 // LSN of the segment's first record
	path  string
}

// WAL is one write-ahead log directory.
type WAL struct {
	dir  string
	open OpenFileFunc
	opts WALOptions

	mu       sync.Mutex
	buf      []byte // append buffer (owned by appenders)
	flushing []byte // flusher's side of the double buffer
	bufEnd   uint64 // last LSN sitting in buf
	nextLSN  uint64 // LSN the next append receives
	durable  uint64 // last LSN known flushed+synced
	err      error  // sticky flusher error
	closing  bool

	work    sync.Cond // appenders -> flusher: buffer non-empty
	synced  sync.Cond // flusher -> committers: durable advanced
	done    chan struct{}
	started bool

	seg      File // active segment
	segPath  string
	segFirst uint64
	segSize  int64
	segments []walSegment // closed segments, ascending firstLSN
	syncs    uint64
}

// OpenWAL opens (creating if needed) the log in dir, truncating any
// torn tail left by a crash, and starts the flusher.
func OpenWAL(dir string, o WALOptions) (*WAL, error) {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = defaultSegmentBytes
	}
	if o.CommitInterval == 0 {
		o.CommitInterval = defaultCommitInterval
	}
	if o.OpenFile == nil {
		o.OpenFile = OpenOSFile
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	w := &WAL{dir: dir, open: o.OpenFile, opts: o, done: make(chan struct{})}
	w.work.L = &w.mu
	w.synced.L = &w.mu

	segs, err := listSegments(dir)
	if err != nil {
		return nil, err
	}
	if len(segs) == 0 {
		w.nextLSN = 1
		if err := w.rollLocked(); err != nil {
			return nil, err
		}
	} else {
		last := segs[len(segs)-1]
		f, err := w.open(last.path)
		if err != nil {
			return nil, err
		}
		records, validBytes, _, err := scanSegment(f)
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("storage: wal %s: %w", last.path, err)
		}
		size, err := f.Size()
		if err == nil && size > validBytes {
			// Drop the torn tail so new appends never sit behind garbage.
			err = f.Truncate(validBytes)
		}
		if err == nil && records == 0 {
			// The crash may have torn the segment header itself; the
			// first LSN is authoritative in the file name, so rewriting
			// is always safe.
			err = writeSegmentHeader(f, last.first)
		}
		if err != nil {
			f.Close()
			return nil, err
		}
		w.seg = f
		w.segPath = last.path
		w.segFirst = last.first
		w.segSize = validBytes
		w.segments = segs[:len(segs)-1]
		w.nextLSN = last.first + uint64(records)
	}
	w.durable = w.nextLSN - 1
	w.started = true
	go w.run()
	return w, nil
}

func segmentPath(dir string, first uint64) string {
	return filepath.Join(dir, fmt.Sprintf("wal-%016x.seg", first))
}

func listSegments(dir string) ([]walSegment, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []walSegment
	for _, e := range ents {
		var first uint64
		if n, _ := fmt.Sscanf(e.Name(), "wal-%016x.seg", &first); n == 1 {
			segs = append(segs, walSegment{first: first, path: filepath.Join(dir, e.Name())})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	return segs, nil
}

// rollLocked closes the active segment (if any) and starts a new one
// whose first record will be nextLSN. Called with mu held or before
// the flusher starts.
func (w *WAL) rollLocked() error {
	if w.seg != nil {
		if err := w.seg.Close(); err != nil {
			return err
		}
		w.segments = append(w.segments, walSegment{first: w.segFirst, path: w.segPath})
	}
	path := segmentPath(w.dir, w.nextLSN)
	f, err := w.open(path)
	if err != nil {
		return err
	}
	if err := writeSegmentHeader(f, w.nextLSN); err != nil {
		f.Close()
		return err
	}
	w.seg = f
	w.segPath = path
	w.segFirst = w.nextLSN
	w.segSize = walHeaderSize
	return nil
}

func writeSegmentHeader(f File, first uint64) error {
	hdr := make([]byte, walHeaderSize)
	binary.LittleEndian.PutUint32(hdr[0:4], walMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], 1) // format version
	binary.LittleEndian.PutUint64(hdr[8:16], first)
	_, err := f.WriteAt(hdr, 0)
	return err
}

// Append buffers one record and returns its LSN. The record is not
// durable until Commit(lsn) (or Sync) returns.
func (w *WAL) Append(payload []byte) (uint64, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.err != nil {
		return 0, w.err
	}
	if w.closing {
		return 0, fmt.Errorf("storage: wal closed")
	}
	lsn := w.nextLSN
	w.nextLSN++
	var head [walFrameHead]byte
	binary.LittleEndian.PutUint32(head[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(head[4:8], crc32.Checksum(payload, crcTable))
	w.buf = append(w.buf, head[:]...)
	w.buf = append(w.buf, payload...)
	w.bufEnd = lsn
	w.work.Signal()
	return lsn, nil
}

// Commit blocks until every record with LSN <= lsn is flushed and
// fsynced, sharing the fsync with every other commit in the window.
func (w *WAL) Commit(lsn uint64) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	for w.durable < lsn && w.err == nil {
		if w.closing {
			return fmt.Errorf("storage: wal closed")
		}
		w.synced.Wait()
	}
	return w.err
}

// Sync commits everything appended so far.
func (w *WAL) Sync() error {
	w.mu.Lock()
	lsn := w.nextLSN - 1
	w.mu.Unlock()
	return w.Commit(lsn)
}

// LastLSN returns the most recently assigned LSN (0 = none yet).
func (w *WAL) LastLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.nextLSN - 1
}

// DurableLSN returns the last fsynced LSN.
func (w *WAL) DurableLSN() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.durable
}

// Syncs returns the number of fsyncs issued (group-commit
// amortization metric).
func (w *WAL) Syncs() uint64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.syncs
}

// run is the flusher goroutine: gather a batch for one commit
// interval, write it, fsync once, wake the committers.
func (w *WAL) run() {
	defer close(w.done)
	for {
		w.mu.Lock()
		for len(w.buf) == 0 && !w.closing && w.err == nil {
			w.work.Wait()
		}
		if (w.closing && len(w.buf) == 0) || w.err != nil {
			w.synced.Broadcast() // release any committer still waiting
			w.mu.Unlock()
			return
		}
		interval := w.opts.CommitInterval
		closing := w.closing
		w.mu.Unlock()
		if interval > 0 && !closing {
			time.Sleep(interval) // the group-commit gathering window
		}
		w.mu.Lock()
		w.buf, w.flushing = w.flushing[:0], w.buf
		batchEnd := w.bufEnd
		w.mu.Unlock()

		err := w.writeBatch(w.flushing)
		if err == nil && !w.opts.NoSync {
			err = w.seg.Sync()
		}

		w.mu.Lock()
		if err != nil {
			w.err = err
		} else {
			w.durable = batchEnd
			w.syncs++
		}
		w.synced.Broadcast()
		w.mu.Unlock()
	}
}

// writeBatch appends the encoded frames to the active segment,
// rolling first when the segment is over budget. Only the flusher
// calls this, so seg* fields are stable outside mu.
func (w *WAL) writeBatch(b []byte) error {
	if w.segSize >= w.opts.SegmentBytes {
		if !w.opts.NoSync {
			if err := w.seg.Sync(); err != nil {
				return err
			}
		}
		// Rolling happens only at batch boundaries (the implicit
		// per-segment LSN numbering depends on it); the batch about to
		// be written becomes the new segment's first records, so its
		// first LSN — durable+1 — names the file.
		w.mu.Lock()
		next := w.durable + 1
		w.mu.Unlock()
		if err := w.rollAt(next); err != nil {
			return err
		}
	}
	if _, err := w.seg.WriteAt(b, w.segSize); err != nil {
		return err
	}
	w.segSize += int64(len(b))
	return nil
}

// rollAt closes the active segment and opens one starting at first.
func (w *WAL) rollAt(first uint64) error {
	if err := w.seg.Close(); err != nil {
		return err
	}
	w.mu.Lock()
	w.segments = append(w.segments, walSegment{first: w.segFirst, path: w.segPath})
	w.mu.Unlock()
	path := segmentPath(w.dir, first)
	f, err := w.open(path)
	if err != nil {
		return err
	}
	if err := writeSegmentHeader(f, first); err != nil {
		f.Close()
		return err
	}
	w.seg = f
	w.segPath = path
	w.segFirst = first
	w.segSize = walHeaderSize
	return nil
}

// TruncateBefore removes closed segments every record of which has
// LSN < lsn. The active segment is never removed, so truncation is
// always whole-file deletion — crash-safe by construction (a surviving
// segment just gets skipped again on the next replay).
func (w *WAL) TruncateBefore(lsn uint64) error {
	w.mu.Lock()
	var keep, drop []walSegment
	for i, s := range w.segments {
		end := w.segFirst // first LSN of the NEXT segment bounds this one
		if i+1 < len(w.segments) {
			end = w.segments[i+1].first
		}
		if end <= lsn {
			drop = append(drop, s)
		} else {
			keep = append(keep, s)
		}
	}
	w.segments = keep
	w.mu.Unlock()
	for _, s := range drop {
		if err := os.Remove(s.path); err != nil && !os.IsNotExist(err) {
			return err
		}
	}
	return nil
}

// Close flushes, fsyncs and stops the flusher.
func (w *WAL) Close() error {
	w.mu.Lock()
	if w.closing {
		w.mu.Unlock()
		<-w.done
		return w.err
	}
	w.closing = true
	w.work.Signal()
	w.mu.Unlock()
	<-w.done
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.seg != nil {
		if err := w.seg.Close(); err != nil && w.err == nil {
			w.err = err
		}
		w.seg = nil
	}
	return w.err
}

// ReplayStats reports what Replay found.
type ReplayStats struct {
	Records  int
	Segments int
	Bytes    int64
	TornTail bool
	FirstLSN uint64
	LastLSN  uint64
}

// Replay streams every valid record in dir to fn in LSN order. A
// corrupt frame at the tail of the final segment stops replay cleanly
// (TornTail); corruption anywhere else is an error. fn returning an
// error aborts.
func Replay(dir string, open OpenFileFunc, fn func(lsn uint64, payload []byte) error) (ReplayStats, error) {
	var st ReplayStats
	if open == nil {
		open = OpenOSFile
	}
	segs, err := listSegments(dir)
	if os.IsNotExist(err) {
		return st, nil
	}
	if err != nil {
		return st, err
	}
	for i, s := range segs {
		last := i == len(segs)-1
		f, err := open(s.path)
		if err != nil {
			return st, err
		}
		records, validBytes, torn, err := scanSegmentFunc(f, s.first, func(lsn uint64, payload []byte) error {
			if st.Records == 0 {
				st.FirstLSN = lsn
			}
			st.LastLSN = lsn
			st.Records++
			return fn(lsn, payload)
		})
		f.Close()
		if err != nil {
			return st, fmt.Errorf("storage: wal %s: %w", s.path, err)
		}
		if torn {
			if !last {
				return st, fmt.Errorf("storage: wal %s: corrupt frame after %d records in non-final segment", s.path, records)
			}
			st.TornTail = true
		}
		st.Segments++
		st.Bytes += validBytes
	}
	return st, nil
}

// scanSegment validates frames without delivering payloads.
func scanSegment(f File) (records int, validBytes int64, torn bool, err error) {
	return scanSegmentFunc(f, 0, nil)
}

// scanSegmentFunc walks one segment frame by frame, verifying CRCs,
// optionally delivering payloads. It stops at the first invalid frame
// (torn=true) rather than erroring: the caller decides whether a torn
// tail is acceptable for this segment's position.
func scanSegmentFunc(f File, firstLSN uint64, fn func(lsn uint64, payload []byte) error) (records int, validBytes int64, torn bool, err error) {
	size, err := f.Size()
	if err != nil {
		return 0, 0, false, err
	}
	if size < walHeaderSize {
		return 0, walHeaderSize, size > 0, nil
	}
	hdr := make([]byte, walHeaderSize)
	if _, err := f.ReadAt(hdr, 0); err != nil {
		return 0, 0, false, err
	}
	if binary.LittleEndian.Uint32(hdr[0:4]) != walMagic {
		// A torn header is the same class of wreckage as a torn tail:
		// the crash hit during segment creation, before any record.
		return 0, walHeaderSize, true, nil
	}
	if firstLSN == 0 {
		firstLSN = binary.LittleEndian.Uint64(hdr[8:16])
	}
	off := int64(walHeaderSize)
	var head [walFrameHead]byte
	for {
		if off+walFrameHead > size {
			return records, off, off < size, nil
		}
		if _, err := f.ReadAt(head[:], off); err != nil {
			return records, off, false, err
		}
		plen := int64(binary.LittleEndian.Uint32(head[0:4]))
		want := binary.LittleEndian.Uint32(head[4:8])
		if plen < 0 || off+walFrameHead+plen > size {
			return records, off, true, nil
		}
		payload := make([]byte, plen)
		if _, err := f.ReadAt(payload, off+walFrameHead); err != nil {
			return records, off, false, err
		}
		if crc32.Checksum(payload, crcTable) != want {
			return records, off, true, nil
		}
		if fn != nil {
			if err := fn(firstLSN+uint64(records), payload); err != nil {
				return records, off, false, err
			}
		}
		records++
		off += walFrameHead + plen
	}
}
