// Command primactl is the PRIMA command-line tool: it computes policy
// coverage, runs policy refinement over audit logs, and replays the
// paper's worked examples.
//
// Usage:
//
//	primactl demo fig3                      reproduce the Figure 3 coverage example
//	primactl demo table1                    reproduce the §5 / Table 1 walk-through
//	primactl coverage -vocab V -policy P -audit A
//	primactl refine   -vocab V -policy P -audit A [-support 5] [-users 2] [-adopt -out P']
//	primactl patterns -audit A [-engine fpgrowth|apriori] [-policy P] [-partial]
//	primactl generalize -vocab V -policy P [-out P']
//	primactl report   -vocab V -policy P -audit A [-title T]
//	primactl lint     -vocab V -policy P [-json] [-overbroad F] [-materialize]
//	primactl vocab    [-file V] [-gen BxD] [-stats]  print or generate a vocabulary
//	primactl audit recover -dir D [-site S] [-checkpoint=false] [-export out.jsonl]
//	primactl federate serve  -listen A [-policy P [-vocab V] [-interval 5s] [-reject X]] [-export out.jsonl]
//	primactl federate stream -addr A -audit F [-site S] [-batch N] [-window N]
//
// Vocabularies use the indented text format, policies one compact
// rule per line, audit logs JSONL or CSV (by extension).
package main

import (
	"errors"
	"fmt"
	"os"
)

// exitError carries a specific process exit status through run: lint
// distinguishes "findings" (1) from "usage error" (2) so scripts and
// CI can tell a dirty policy from a broken invocation.
type exitError struct {
	code int
	err  error
}

func (e *exitError) Error() string { return e.err.Error() }
func (e *exitError) Unwrap() error { return e.err }

func exitCode(err error) int {
	if err == nil {
		return 0
	}
	var ee *exitError
	if errors.As(err, &ee) {
		return ee.code
	}
	return 1
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "primactl:", err)
		os.Exit(exitCode(err))
	}
}

func run(args []string) error {
	if len(args) == 0 {
		return fmt.Errorf("a subcommand is required: demo, coverage, refine, vocab")
	}
	switch args[0] {
	case "demo":
		return cmdDemo(args[1:])
	case "coverage":
		return cmdCoverage(args[1:])
	case "refine":
		return cmdRefine(args[1:])
	case "patterns":
		return cmdPatterns(args[1:])
	case "vocab":
		return cmdVocab(args[1:])
	case "generalize":
		return cmdGeneralize(args[1:])
	case "report":
		return cmdReport(args[1:])
	case "lint":
		return cmdLint(args[1:])
	case "audit":
		return cmdAudit(args[1:])
	case "federate":
		return cmdFederate(args[1:])
	case "help", "-h", "--help":
		fmt.Println("subcommands: demo {fig3|table1}, coverage, refine, patterns, generalize, report, lint, vocab, audit recover, federate {serve|stream}")
		return nil
	default:
		return fmt.Errorf("unknown subcommand %q", args[0])
	}
}
