package main

import (
	_ "embed"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// lockorder derives the whole-module lock acquisition graph: a node
// per lock class (a named struct type with a sync.Mutex/RWMutex
// field), an edge A -> B whenever some execution path acquires B
// while holding A — directly, or through any chain of calls resolved
// by the call graph. Two properties are enforced:
//
//  1. the graph is acyclic: any cycle among distinct classes is a
//     potential deadlock and is reported on every participating edge;
//  2. classes pinned in lockorder.txt are acquired in file order:
//     acquiring an earlier-pinned class while holding a later-pinned
//     one is an inversion even before a full cycle exists.
//
// Limitations, by design: acquisitions of two instances of the same
// class are not tracked (no static instance identity), and locks
// passed to the standard library stay invisible (std bodies are not
// loaded).
var lockorderAnalyzer = &Analyzer{
	Name:       "lockorder",
	Doc:        "lock acquisition graph: cycles and lockorder.txt inversions are potential deadlocks",
	RunProgram: runLockorder,
}

// lockOrderPins is the checked-in canonical acquisition order,
// module-relative class names, one per line, outermost first.
//
//go:embed lockorder.txt
var lockOrderPins string

// lockEdge is one observed held->acquired pair.
type lockEdge struct {
	from, to string // class names (module-qualified)
	pos      token.Pos
	pkg      *Package // for position rendering
	fn       string   // function where observed
}

func runLockorder(prog *Program) []Finding {
	edges := collectLockEdges(prog)
	return lockFindings(prog, edges, parseLockOrder(lockOrderPins))
}

// parseLockOrder maps module-relative class names to their pinned rank.
func parseLockOrder(text string) map[string]int {
	rank := make(map[string]int)
	for _, line := range strings.Split(text, "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		rank[line] = len(rank)
	}
	return rank
}

// collectLockEdges runs the held-set dataflow over every function.
func collectLockEdges(prog *Program) []*lockEdge {
	// mayAcquire[n]: classes n may lock, transitively through calls.
	may := prog.CG.TransitiveClosure(func(n *CGNode) factSet {
		facts := factSet{}
		ownBody(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if class, op := lockEvent(prog, n, call); class != "" && (op == "Lock" || op == "RLock") {
					facts[class] = true
				}
			}
			return true
		})
		return facts
	})

	var edges []*lockEdge
	seen := make(map[string]bool) // from|to|pos dedup
	record := func(n *CGNode, held factSet, to string, pos token.Pos) {
		for from := range held {
			if from == to {
				continue // same-class pairs need instance identity we don't have
			}
			key := fmt.Sprintf("%s|%s|%d", from, to, pos)
			if seen[key] {
				continue
			}
			seen[key] = true
			edges = append(edges, &lockEdge{from: from, to: to, pos: pos, pkg: n.Pkg, fn: n.Name()})
		}
	}

	for _, n := range prog.CG.Nodes() {
		analyzeHeldSets(prog, n, may, record)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		if edges[i].to != edges[j].to {
			return edges[i].to < edges[j].to
		}
		return edges[i].pos < edges[j].pos
	})
	return edges
}

// analyzeHeldSets computes the may-held lock set at every point of n
// via the CFG fixpoint, then replays each block recording edges.
func analyzeHeldSets(prog *Program, n *CGNode, may map[*CGNode]factSet, record func(*CGNode, factSet, string, token.Pos)) {
	siteCallees := make(map[*ast.CallExpr][]*CGNode)
	for _, site := range n.Calls {
		if site.Call != nil {
			siteCallees[site.Call] = append(siteCallees[site.Call], site.Callees...)
		}
	}

	heldSetReplay(prog, n, nil, func(m ast.Node, held factSet) {
		switch x := m.(type) {
		case *ast.FuncLit:
			// The literal may run here (immediate call, defer, go):
			// its transitive acquisitions pair with the current held
			// set. Its own body is a separate CG node.
			if ln := prog.CG.LitNode(x); ln != nil {
				for to := range may[ln] {
					record(n, held, to, x.Pos())
				}
			}
		case *ast.CallExpr:
			if class, op := lockEvent(prog, n, x); class != "" {
				if op == "Lock" || op == "RLock" {
					record(n, held, class, x.Pos())
				}
				return
			}
			for _, callee := range siteCallees[x] {
				for to := range may[callee] {
					record(n, held, to, x.Pos())
				}
			}
		}
	})
}

// heldSetReplay is the shared held-set dataflow used by lockorder and
// chanuse: it computes the may-held lock set at every point of n via
// the CFG fixpoint, then replays each block invoking the callbacks
// with the set in effect at that point. onStmt (optional) fires before
// each block statement executes; onNode (optional) fires at each
// call expression and nested function literal, with Lock call sites
// seeing the set held just before acquisition. A deferred unlock
// keeps the lock held for the remainder of the function, which is
// exactly the held-set we want.
func heldSetReplay(prog *Program, n *CGNode, onStmt func(*Block, ast.Stmt, factSet), onNode func(ast.Node, factSet)) {
	cfg := prog.SSA(n).CFG
	apply := func(b *Block, held factSet, rec bool) factSet {
		held = held.clone()
		for _, s := range b.Stmts {
			if rec && onStmt != nil {
				onStmt(b, s, held.clone())
			}
			_, isDefer := s.(*ast.DeferStmt)
			ast.Inspect(s, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.FuncLit:
					if x != n.Lit {
						if rec && onNode != nil {
							onNode(x, held.clone())
						}
						return false
					}
				case *ast.CallExpr:
					class, op := lockEvent(prog, n, x)
					if class == "" {
						if rec && onNode != nil {
							onNode(x, held.clone())
						}
						return true
					}
					switch op {
					case "Lock", "RLock":
						if rec && onNode != nil {
							onNode(x, held.clone())
						}
						held[class] = true
					case "Unlock", "RUnlock":
						if !isDefer {
							delete(held, class)
						}
					}
				}
				return true
			})
		}
		return held
	}

	res := cfg.Fixpoint(factSet{}, func(b *Block, in factSet) factSet {
		return apply(b, in, false)
	})
	for _, b := range cfg.Blocks {
		apply(b, res.In[b.Index], true)
	}
}

// lockEvent classifies a call as a mutex operation on a module lock
// class. It matches x.mu.Lock() (named mutex field) and x.Lock()
// (embedded mutex) where x has a named module struct type, returning
// the class name and the sync method name. Mutex pointers bound to a
// plain local (mu := &a.mu; mu.Lock()) resolve through the SSA copy
// chain to the owner they alias.
func lockEvent(prog *Program, n *CGNode, call *ast.CallExpr) (class, op string) {
	p := n.Pkg
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock", "Unlock", "RUnlock":
	default:
		return "", ""
	}
	// The invoked method must be sync.Mutex/RWMutex's.
	s, ok := p.Info.Selections[sel]
	if !ok || s.Kind() != types.MethodVal {
		return "", ""
	}
	if obj := s.Obj(); obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return "", ""
	}
	// Find the owning expression: for x.mu.Lock() the owner is x; for
	// an embedded mutex x.Lock() the owner is x itself.
	owner := sel.X
	if inner, ok := ast.Unparen(sel.X).(*ast.SelectorExpr); ok {
		if tv, ok := p.Info.Types[sel.X]; ok && isSyncMutex(tv.Type) {
			owner = inner.X
		}
	}
	if class := classifyLockOwner(prog, p, owner); class != "" {
		return class, sel.Sel.Name
	}
	// SSA alias resolution: the owner is a plain local bound from a
	// mutex field or struct elsewhere in the function. Follow the copy
	// chain to the defining expression and classify that instead.
	if id, ok := ast.Unparen(owner).(*ast.Ident); ok {
		f := prog.SSA(n)
		if v, ok := f.Uses[id]; ok {
			if def := f.DefExpr(v); def != nil {
				e := stripAddr(def)
				// Peel a trailing mutex-field selector: &a.mu aliases a.
				if inner, ok := ast.Unparen(e).(*ast.SelectorExpr); ok {
					if tv, ok := p.Info.Types[e]; ok && isSyncMutex(tv.Type) {
						e = inner.X
					}
				}
				if class := classifyLockOwner(prog, p, e); class != "" {
					return class, sel.Sel.Name
				}
			}
		}
	}
	return "", ""
}

// classifyLockOwner maps an owner expression to its module lock class,
// or "" when the owner is not a named module type.
func classifyLockOwner(prog *Program, p *Package, owner ast.Expr) string {
	tv, ok := p.Info.Types[owner]
	if !ok || tv.Type == nil {
		return ""
	}
	named, ok := derefType(tv.Type).(*types.Named)
	if !ok {
		return ""
	}
	if pkg := named.Obj().Pkg(); pkg == nil || !moduleInternal(prog, pkg.Path()) {
		return ""
	}
	return classOf(named)
}

func isSyncMutex(t types.Type) bool {
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

func moduleInternal(prog *Program, path string) bool {
	return path == prog.Loader.Module || strings.HasPrefix(path, prog.Loader.Module+"/")
}

// lockFindings turns the edge set into diagnostics: SCC cycles first,
// then pinned-order inversions.
func lockFindings(prog *Program, edges []*lockEdge, rank map[string]int) []Finding {
	module := prog.Loader.Module
	short := func(class string) string { return shortClass(class, module) }

	// Adjacency over classes.
	adj := make(map[string]map[string]bool)
	for _, e := range edges {
		if adj[e.from] == nil {
			adj[e.from] = make(map[string]bool)
		}
		adj[e.from][e.to] = true
	}
	scc := stronglyConnected(adj)

	var out []Finding
	for _, e := range edges {
		if scc[e.from] != 0 && scc[e.from] == scc[e.to] {
			out = append(out, Finding{
				Pos:      e.pkg.Fset.Position(e.pos),
				Analyzer: "lockorder",
				Message: fmt.Sprintf("lock-order cycle: %s acquired while %s is held in %s (potential deadlock)",
					short(e.to), short(e.from), e.fn),
			})
			continue
		}
		rf, okF := rank[short(e.from)]
		rt, okT := rank[short(e.to)]
		if okF && okT && rt < rf {
			out = append(out, Finding{
				Pos:      e.pkg.Fset.Position(e.pos),
				Analyzer: "lockorder",
				Message: fmt.Sprintf("lock order inversion in %s: %s acquired while %s is held, but lockorder.txt pins %s first",
					e.fn, short(e.to), short(e.from), short(e.to)),
			})
		}
	}
	return out
}

// stronglyConnected assigns a component id (>0) to every class that
// sits in a cycle of two or more distinct classes; classes in trivial
// components get 0. Tarjan's algorithm; the class graph is tiny.
func stronglyConnected(adj map[string]map[string]bool) map[string]int {
	nodes := make([]string, 0, len(adj))
	seenNode := make(map[string]bool)
	addNode := func(n string) {
		if !seenNode[n] {
			seenNode[n] = true
			nodes = append(nodes, n)
		}
	}
	for from, tos := range adj {
		addNode(from)
		for to := range tos {
			addNode(to)
		}
	}
	sort.Strings(nodes)

	index := make(map[string]int)
	low := make(map[string]int)
	onStack := make(map[string]bool)
	var stack []string
	comp := make(map[string]int)
	next, compID := 1, 0

	var strong func(v string)
	strong = func(v string) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		var tos []string
		for to := range adj[v] {
			tos = append(tos, to)
		}
		sort.Strings(tos)
		for _, w := range tos {
			if _, ok := index[w]; !ok {
				strong(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var members []string
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				members = append(members, w)
				if w == v {
					break
				}
			}
			if len(members) > 1 {
				compID++
				for _, m := range members {
					comp[m] = compID
				}
			}
		}
	}
	for _, v := range nodes {
		if _, ok := index[v]; !ok {
			strong(v)
		}
	}
	return comp
}
