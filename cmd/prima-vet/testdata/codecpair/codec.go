// Package codecfix triggers the codecpair analyzer.
package codecfix

import (
	"errors"
	"strconv"
)

// EncodeThing / DecodeThing form a complete, tested pair.
func EncodeThing(v int) []byte { return []byte(strconv.Itoa(v)) }

func DecodeThing(b []byte) (int, error) { return strconv.Atoi(string(b)) }

// EncodeOrphan has no decoder at all.
func EncodeOrphan(v int) []byte { return []byte{byte(v)} } // want codecpair "EncodeOrphan has no matching DecodeOrphan"

// MarshalBlob / UnmarshalBlob exist but codec_test.go never touches
// them.
func MarshalBlob(v int) ([]byte, error) { return []byte{byte(v)}, nil } // want codecpair "does not exercise both MarshalBlob and UnmarshalBlob"

func UnmarshalBlob(b []byte) (int, error) {
	if len(b) != 1 {
		return 0, errors.New("bad blob")
	}
	return int(b[0]), nil
}
