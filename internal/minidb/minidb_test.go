package minidb

import (
	"strings"
	"testing"
	"time"
)

// testDB builds a small clinical-flavoured fixture.
func testDB(t *testing.T) *Database {
	t.Helper()
	db := NewDatabase()
	mustExec := func(sql string) {
		t.Helper()
		if _, err := db.Exec(sql); err != nil {
			t.Fatalf("%s: %v", sql, err)
		}
	}
	mustExec(`CREATE TABLE access (
		id INT, usr TEXT, data TEXT, purpose TEXT, role TEXT, status INT, at TIMESTAMP
	)`)
	rows := []string{
		`(1, 'John', 'Prescription', 'Treatment', 'Nurse', 1, '2007-03-01T08:00:00Z')`,
		`(2, 'Tim', 'Referral', 'Treatment', 'Nurse', 1, '2007-03-01T09:00:00Z')`,
		`(3, 'Mark', 'Referral', 'Registration', 'Nurse', 0, '2007-03-01T10:00:00Z')`,
		`(4, 'Sarah', 'Psychiatry', 'Treatment', 'Doctor', 0, '2007-03-01T11:00:00Z')`,
		`(5, 'Bill', 'Address', 'Billing', 'Clerk', 1, '2007-03-01T12:00:00Z')`,
		`(6, 'Jason', 'Prescription', 'Billing', 'Clerk', 0, '2007-03-01T13:00:00Z')`,
		`(7, 'Mark', 'Referral', 'Registration', 'Nurse', 0, '2007-03-01T14:00:00Z')`,
		`(8, 'Tim', 'Referral', 'Registration', 'Nurse', 0, '2007-03-01T15:00:00Z')`,
		`(9, 'Bob', 'Referral', 'Registration', 'Nurse', 0, '2007-03-01T16:00:00Z')`,
		`(10, 'Mark', 'Referral', 'Registration', 'Nurse', 0, '2007-03-01T17:00:00Z')`,
	}
	mustExec(`INSERT INTO access VALUES ` + strings.Join(rows, ", "))
	return db
}

func q(t *testing.T, db *Database, sql string) *Result {
	t.Helper()
	res, err := db.Exec(sql)
	if err != nil {
		t.Fatalf("%s: %v", sql, err)
	}
	return res
}

func TestCreateInsertSelectStar(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT * FROM access`)
	if len(res.Rows) != 10 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	if len(res.Columns) != 7 || res.Columns[1] != "usr" {
		t.Errorf("columns = %v", res.Columns)
	}
	if res.Rows[0][1].AsText() != "John" {
		t.Errorf("row0 = %v", res.Rows[0])
	}
	if res.Rows[0][6].Kind() != KindTime {
		t.Errorf("timestamp column not coerced: %v", res.Rows[0][6].Kind())
	}
}

func TestSelectWhere(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT usr FROM access WHERE status = 0 AND purpose = 'Registration'`)
	if len(res.Rows) != 5 {
		t.Fatalf("got %d rows, want 5", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE id > 3 AND id <= 5`)
	if len(res.Rows) != 2 {
		t.Fatalf("range filter: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE usr <> 'Mark'`)
	if len(res.Rows) != 7 {
		t.Fatalf("<>: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE usr != 'Mark'`)
	if len(res.Rows) != 7 {
		t.Fatalf("!=: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE NOT (status = 0)`)
	if len(res.Rows) != 3 {
		t.Fatalf("NOT: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE purpose = 'Billing' OR purpose = 'Treatment'`)
	if len(res.Rows) != 5 {
		t.Fatalf("OR: %d rows", len(res.Rows))
	}
}

func TestSelectInLike(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT id FROM access WHERE usr IN ('Mark', 'Bob')`)
	if len(res.Rows) != 4 {
		t.Fatalf("IN: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE usr NOT IN ('Mark', 'Bob')`)
	if len(res.Rows) != 6 {
		t.Fatalf("NOT IN: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE data LIKE 'P%'`)
	if len(res.Rows) != 3 { // Prescription x2, Psychiatry
		t.Fatalf("LIKE: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE data LIKE '_eferral'`)
	if len(res.Rows) != 6 {
		t.Fatalf("LIKE _: %d rows", len(res.Rows))
	}
	res = q(t, db, `SELECT id FROM access WHERE data NOT LIKE '%e%'`)
	// Case-insensitive: the only data value without an 'e' is Psychiatry.
	if len(res.Rows) != 1 {
		t.Fatalf("NOT LIKE: %d rows", len(res.Rows))
	}
}

func TestLikeMatch(t *testing.T) {
	cases := []struct {
		s, p string
		want bool
	}{
		{"hello", "hello", true},
		{"hello", "h%", true},
		{"hello", "%o", true},
		{"hello", "%ell%", true},
		{"hello", "h_llo", true},
		{"hello", "h__lo", true},
		{"hello", "", false},
		{"", "%", true},
		{"", "", true},
		{"abc", "a%b%c", true},
		{"abc", "%%", true},
		{"abc", "a_c_", false},
		{"axbxc", "a%c", true},
	}
	for _, c := range cases {
		if got := likeMatch(c.s, c.p); got != c.want {
			t.Errorf("likeMatch(%q,%q) = %v, want %v", c.s, c.p, got, c.want)
		}
	}
}

func TestAlgorithm5Query(t *testing.T) {
	// The paper's dataAnalysis SQL, verbatim shape:
	// SELECT a1..an FROM P GROUP BY a1..an
	// HAVING COUNT(*) >= f AND COUNT(DISTINCT usr) > 1.
	db := testDB(t)
	res := q(t, db, `
		SELECT data, purpose, role, COUNT(*) AS support, COUNT(DISTINCT usr) AS users
		FROM access
		WHERE status = 0
		GROUP BY data, purpose, role
		HAVING COUNT(*) >= 5 AND COUNT(DISTINCT usr) > 1`)
	if len(res.Rows) != 1 {
		t.Fatalf("got %d patterns, want 1: %v", len(res.Rows), res.Rows)
	}
	row := res.Rows[0]
	if row[0].AsText() != "Referral" || row[1].AsText() != "Registration" || row[2].AsText() != "Nurse" {
		t.Errorf("pattern = %v", row)
	}
	if row[3].AsInt() != 5 || row[4].AsInt() != 3 {
		t.Errorf("support/users = %v/%v, want 5/3", row[3], row[4])
	}
}

func TestAggregatesWithoutGroupBy(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT COUNT(*), MIN(id), MAX(id), SUM(id), AVG(id) FROM access`)
	row := res.Rows[0]
	if row[0].AsInt() != 10 || row[1].AsInt() != 1 || row[2].AsInt() != 10 {
		t.Errorf("count/min/max = %v", row)
	}
	if row[3].AsInt() != 55 {
		t.Errorf("sum = %v", row[3])
	}
	if row[4].AsFloat() != 5.5 {
		t.Errorf("avg = %v", row[4])
	}
}

func TestAggregateOverEmptyTable(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE empty (x INT)`)
	res := q(t, db, `SELECT COUNT(*), SUM(x), MIN(x) FROM empty`)
	if len(res.Rows) != 1 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	if res.Rows[0][0].AsInt() != 0 {
		t.Errorf("COUNT(*) = %v", res.Rows[0][0])
	}
	if !res.Rows[0][1].IsNull() || !res.Rows[0][2].IsNull() {
		t.Errorf("SUM/MIN over empty should be NULL: %v", res.Rows[0])
	}
	// But a grouped query over empty input yields no groups.
	res = q(t, db, `SELECT x, COUNT(*) FROM empty GROUP BY x`)
	if len(res.Rows) != 0 {
		t.Errorf("grouped empty: %v", res.Rows)
	}
}

func TestGroupByStrictness(t *testing.T) {
	db := testDB(t)
	if _, err := db.Exec(`SELECT usr, COUNT(*) FROM access GROUP BY data`); err == nil {
		t.Error("selecting a non-grouped column was accepted")
	}
	if _, err := db.Exec(`SELECT * FROM access GROUP BY data`); err == nil {
		t.Error("star with GROUP BY was accepted")
	}
	if _, err := db.Exec(`SELECT COUNT(COUNT(*)) FROM access`); err == nil {
		t.Error("nested aggregate accepted")
	}
	if _, err := db.Exec(`SELECT data FROM access WHERE COUNT(*) > 1`); err == nil {
		t.Error("aggregate in WHERE accepted")
	}
	if _, err := db.Exec(`SELECT data, COUNT(*) FROM access GROUP BY COUNT(*)`); err == nil {
		t.Error("aggregate in GROUP BY accepted")
	}
}

func TestGroupByExpression(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT LOWER(data), COUNT(*) FROM access GROUP BY LOWER(data) ORDER BY 2 DESC, 1`)
	if len(res.Rows) != 4 {
		t.Fatalf("groups = %d: %v", len(res.Rows), res.Rows)
	}
	if res.Rows[0][0].AsText() != "referral" || res.Rows[0][1].AsInt() != 6 {
		t.Errorf("top group = %v", res.Rows[0])
	}
}

func TestOrderByVariants(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT id, usr FROM access ORDER BY usr ASC, id DESC LIMIT 3`)
	if res.Rows[0][1].AsText() != "Bill" {
		t.Errorf("first = %v", res.Rows[0])
	}
	// Alias ordering.
	res = q(t, db, `SELECT id AS n FROM access ORDER BY n DESC LIMIT 1`)
	if res.Rows[0][0].AsInt() != 10 {
		t.Errorf("alias order: %v", res.Rows[0])
	}
	// Ordinal ordering.
	res = q(t, db, `SELECT id FROM access ORDER BY 1 DESC LIMIT 2`)
	if res.Rows[0][0].AsInt() != 10 || res.Rows[1][0].AsInt() != 9 {
		t.Errorf("ordinal order: %v", res.Rows)
	}
	if _, err := db.Exec(`SELECT id FROM access ORDER BY 3`); err == nil {
		t.Error("out-of-range ordinal accepted")
	}
	// ORDER BY a column not in the projection.
	res = q(t, db, `SELECT usr FROM access ORDER BY id DESC LIMIT 1`)
	if res.Rows[0][0].AsText() != "Mark" {
		t.Errorf("non-projected order: %v", res.Rows[0])
	}
}

func TestLimitOffset(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT id FROM access ORDER BY id LIMIT 3 OFFSET 8`)
	if len(res.Rows) != 2 || res.Rows[0][0].AsInt() != 9 {
		t.Errorf("limit/offset: %v", res.Rows)
	}
	res = q(t, db, `SELECT id FROM access LIMIT 0`)
	if len(res.Rows) != 0 {
		t.Errorf("LIMIT 0: %v", res.Rows)
	}
	res = q(t, db, `SELECT id FROM access ORDER BY id LIMIT 5 OFFSET 100`)
	if len(res.Rows) != 0 {
		t.Errorf("big offset: %v", res.Rows)
	}
}

func TestSelectDistinct(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT DISTINCT data FROM access ORDER BY data`)
	if len(res.Rows) != 4 {
		t.Fatalf("distinct data: %v", res.Rows)
	}
	res = q(t, db, `SELECT DISTINCT data, purpose FROM access`)
	if len(res.Rows) != 6 {
		t.Fatalf("distinct pairs: %d", len(res.Rows))
	}
}

func TestDeleteUpdate(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `DELETE FROM access WHERE status = 1`)
	if res.Affected != 3 {
		t.Fatalf("deleted %d, want 3", res.Affected)
	}
	if got := q(t, db, `SELECT COUNT(*) FROM access`).Rows[0][0].AsInt(); got != 7 {
		t.Fatalf("remaining = %d", got)
	}
	res = q(t, db, `UPDATE access SET role = 'RN', status = 9 WHERE purpose = 'Registration'`)
	if res.Affected != 5 {
		t.Fatalf("updated %d, want 5", res.Affected)
	}
	got := q(t, db, `SELECT COUNT(*) FROM access WHERE role = 'RN' AND status = 9`)
	if got.Rows[0][0].AsInt() != 5 {
		t.Errorf("update not visible: %v", got.Rows)
	}
	// DELETE without WHERE clears the table.
	q(t, db, `DELETE FROM access`)
	if db.MustExec(`SELECT COUNT(*) FROM access`).Rows[0][0].AsInt() != 0 {
		t.Error("unconditional delete failed")
	}
}

func TestUpdateSelfReference(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (a INT, b INT)`)
	q(t, db, `INSERT INTO t VALUES (1, 10), (2, 20)`)
	q(t, db, `UPDATE t SET a = a + b`)
	res := q(t, db, `SELECT a FROM t ORDER BY a`)
	if res.Rows[0][0].AsInt() != 11 || res.Rows[1][0].AsInt() != 22 {
		t.Errorf("self-referencing update: %v", res.Rows)
	}
}

func TestInsertColumnList(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (a INT, b TEXT, c FLOAT)`)
	q(t, db, `INSERT INTO t (b, a) VALUES ('x', 5)`)
	res := q(t, db, `SELECT a, b, c FROM t`)
	if res.Rows[0][0].AsInt() != 5 || res.Rows[0][1].AsText() != "x" || !res.Rows[0][2].IsNull() {
		t.Errorf("row = %v", res.Rows[0])
	}
	if _, err := db.Exec(`INSERT INTO t (a) VALUES (1, 2)`); err == nil {
		t.Error("arity mismatch accepted")
	}
	if _, err := db.Exec(`INSERT INTO t (nosuch) VALUES (1)`); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestNullSemantics(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (a INT, b TEXT)`)
	q(t, db, `INSERT INTO t VALUES (1, 'x'), (NULL, 'y'), (3, NULL)`)
	if got := len(q(t, db, `SELECT a FROM t WHERE a = 1`).Rows); got != 1 {
		t.Errorf("= over NULL: %d", got)
	}
	// NULL comparisons exclude rows rather than matching.
	if got := len(q(t, db, `SELECT a FROM t WHERE a <> 1`).Rows); got != 1 {
		t.Errorf("<> excludes NULL rows: %d", got)
	}
	if got := len(q(t, db, `SELECT a FROM t WHERE a IS NULL`).Rows); got != 1 {
		t.Errorf("IS NULL: %d", got)
	}
	if got := len(q(t, db, `SELECT a FROM t WHERE a IS NOT NULL`).Rows); got != 2 {
		t.Errorf("IS NOT NULL: %d", got)
	}
	// Aggregates skip NULLs; COUNT(col) counts non-null.
	res := q(t, db, `SELECT COUNT(a), COUNT(*) FROM t`)
	if res.Rows[0][0].AsInt() != 2 || res.Rows[0][1].AsInt() != 3 {
		t.Errorf("COUNT null handling: %v", res.Rows[0])
	}
	// COALESCE.
	res = q(t, db, `SELECT COALESCE(b, 'missing') FROM t WHERE a = 3`)
	if res.Rows[0][0].AsText() != "missing" {
		t.Errorf("COALESCE: %v", res.Rows[0])
	}
}

func TestScalarFunctions(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (s TEXT, n INT)`)
	q(t, db, `INSERT INTO t VALUES ('AbC', -4)`)
	res := q(t, db, `SELECT LOWER(s), UPPER(s), LENGTH(s), ABS(n), n % 3 FROM t`)
	row := res.Rows[0]
	if row[0].AsText() != "abc" || row[1].AsText() != "ABC" || row[2].AsInt() != 3 || row[3].AsInt() != 4 {
		t.Errorf("scalar funcs: %v", row)
	}
	if row[4].AsInt() != -1 {
		t.Errorf("modulo: %v", row[4])
	}
	if _, err := db.Exec(`SELECT NOSUCHFN(s) FROM t`); err == nil {
		t.Error("unknown function accepted")
	}
}

func TestArithmeticAndConcat(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (a INT, b FLOAT, s TEXT)`)
	q(t, db, `INSERT INTO t VALUES (7, 2.5, 'x')`)
	res := q(t, db, `SELECT a + 1, a - 2, a * 3, a / 2, b * 2, -a, s + 'y' FROM t`)
	row := res.Rows[0]
	if row[0].AsInt() != 8 || row[1].AsInt() != 5 || row[2].AsInt() != 21 || row[3].AsInt() != 3 {
		t.Errorf("int arithmetic: %v", row)
	}
	if row[4].AsFloat() != 5.0 || row[5].AsInt() != -7 || row[6].AsText() != "xy" {
		t.Errorf("mixed: %v", row)
	}
	if _, err := db.Exec(`SELECT a / 0 FROM t`); err == nil {
		t.Error("division by zero accepted")
	}
	if _, err := db.Exec(`SELECT a + s FROM t`); err == nil {
		t.Error("int + text accepted")
	}
}

func TestTimestampComparison(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT COUNT(*) FROM access WHERE at >= '2007-03-01T12:00:00Z'`)
	if res.Rows[0][0].AsInt() != 6 {
		t.Errorf("time filter: %v", res.Rows[0])
	}
	res = q(t, db, `SELECT MIN(at), MAX(at) FROM access`)
	min, max := res.Rows[0][0].AsTime(), res.Rows[0][1].AsTime()
	if min.Hour() != 8 || max.Hour() != 17 {
		t.Errorf("min/max time: %v %v", min, max)
	}
}

func TestCreateDropErrors(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (a INT)`)
	if _, err := db.Exec(`CREATE TABLE t (a INT)`); err == nil {
		t.Error("duplicate table accepted")
	}
	q(t, db, `CREATE TABLE IF NOT EXISTS t (a INT)`)
	if _, err := db.Exec(`SELECT * FROM nosuch`); err == nil {
		t.Error("select from missing table accepted")
	}
	if _, err := db.Exec(`DROP TABLE nosuch`); err == nil {
		t.Error("drop of missing table accepted")
	}
	q(t, db, `DROP TABLE IF EXISTS nosuch`)
	q(t, db, `DROP TABLE t`)
	if _, err := db.Exec(`SELECT * FROM t`); err == nil {
		t.Error("dropped table still queryable")
	}
	if _, err := db.Exec(`CREATE TABLE bad ()`); err == nil {
		t.Error("empty column list accepted")
	}
	if _, err := db.Exec(`CREATE TABLE bad (a INT, A TEXT)`); err == nil {
		t.Error("duplicate column accepted")
	}
	if _, err := db.Exec(`CREATE TABLE bad (a NOSUCHTYPE)`); err == nil {
		t.Error("unknown type accepted")
	}
}

func TestTypeCoercionOnInsert(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (i INT, f FLOAT, s TEXT, b BOOL, ts TIMESTAMP)`)
	q(t, db, `INSERT INTO t VALUES (2.9, 3, 42, 1, '2007-03-01 08:00:00')`)
	res := q(t, db, `SELECT i, f, s, b, ts FROM t`)
	row := res.Rows[0]
	if row[0].Kind() != KindInt || row[0].AsInt() != 2 {
		t.Errorf("float->int: %v", row[0])
	}
	if row[1].Kind() != KindFloat || row[1].AsFloat() != 3 {
		t.Errorf("int->float: %v", row[1])
	}
	if row[2].Kind() != KindText || row[2].AsText() != "42" {
		t.Errorf("int->text: %v", row[2])
	}
	if row[3].Kind() != KindBool || !row[3].AsBool() {
		t.Errorf("int->bool: %v", row[3])
	}
	if row[4].Kind() != KindTime {
		t.Errorf("text->timestamp: %v", row[4])
	}
	if _, err := db.Exec(`INSERT INTO t VALUES (1, 1, 'x', TRUE, 'not a time')`); err == nil {
		t.Error("bad timestamp accepted")
	}
	if _, err := db.Exec(`INSERT INTO t VALUES ('text', 1, 'x', TRUE, '2007-03-01')`); err == nil {
		t.Error("text->int accepted")
	}
}

func TestParserErrors(t *testing.T) {
	db := testDB(t)
	bad := []string{
		``,
		`SELEC * FROM access`,
		`SELECT FROM access`,
		`SELECT * FROM`,
		`SELECT * FROM access WHERE`,
		`SELECT * FROM access GROUP data`,
		`SELECT * FROM access LIMIT x`,
		`SELECT id FROM access ORDER id`,
		`INSERT access VALUES (1)`,
		`INSERT INTO access VALUES 1`,
		`SELECT 'unterminated FROM access`,
		`SELECT * FROM access; SELECT * FROM access`,
		`SELECT id FROM access WHERE usr IN ()`,
		`SELECT (id FROM access`,
		`UPDATE access SET WHERE id = 1`,
		`SELECT id @ 3 FROM access`,
	}
	for _, sql := range bad {
		if _, err := db.Exec(sql); err == nil {
			t.Errorf("accepted bad SQL: %s", sql)
		}
	}
}

func TestQualifiedColumnNames(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT access.usr FROM access WHERE access.id = 1`)
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "John" {
		t.Errorf("qualified name: %v", res.Rows)
	}
}

func TestStringEscapesAndComments(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (s TEXT)`)
	q(t, db, `INSERT INTO t VALUES ('it''s') -- trailing comment`)
	res := q(t, db, "SELECT s FROM t -- comment\nWHERE s = 'it''s'")
	if len(res.Rows) != 1 || res.Rows[0][0].AsText() != "it's" {
		t.Errorf("escape: %v", res.Rows)
	}
}

func TestProgrammaticAPI(t *testing.T) {
	db := NewDatabase()
	tbl, err := db.CreateTable("log", []Column{{Name: "usr", Type: TypeText}, {Name: "n", Type: TypeInt}})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("log", Text("amy"), Int(1)); err != nil {
		t.Fatal(err)
	}
	if err := db.Insert("log", Text("bob"), Int(2)); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 2 || tbl.Name() != "log" {
		t.Errorf("table state: len=%d", tbl.Len())
	}
	if err := db.Insert("log", Text("one value")); err == nil {
		t.Error("arity mismatch accepted")
	}
	if err := db.Insert("nosuch", Int(1)); err == nil {
		t.Error("insert into missing table accepted")
	}
	names := db.TableNames()
	if len(names) != 1 || names[0] != "log" {
		t.Errorf("TableNames = %v", names)
	}
	res := db.MustExec(`SELECT usr FROM log ORDER BY n DESC`)
	if res.RowStrings(0)[0] != "bob" {
		t.Errorf("RowStrings: %v", res.RowStrings(0))
	}
}

func TestValueAccessors(t *testing.T) {
	if Int(3).AsFloat() != 3.0 || Float(2.5).AsInt() != 2 || Bool(true).AsInt() != 1 {
		t.Error("numeric accessors broken")
	}
	if Null().String() != "NULL" || Bool(false).String() != "FALSE" {
		t.Error("render broken")
	}
	now := time.Date(2007, 3, 1, 8, 0, 0, 0, time.UTC)
	if Time(now).AsTime() != now {
		t.Error("time round trip broken")
	}
	if Text("x").AsText() != "x" || Int(9).AsText() != "9" {
		t.Error("AsText broken")
	}
	if KindText.String() != "TEXT" || KindNull.String() != "NULL" {
		t.Error("Kind strings broken")
	}
}

func TestHavingWithoutGroupBy(t *testing.T) {
	db := testDB(t)
	// HAVING over the implicit single group.
	res := q(t, db, `SELECT COUNT(*) FROM access HAVING COUNT(*) > 5`)
	if len(res.Rows) != 1 {
		t.Errorf("having true: %v", res.Rows)
	}
	res = q(t, db, `SELECT COUNT(*) FROM access HAVING COUNT(*) > 50`)
	if len(res.Rows) != 0 {
		t.Errorf("having false: %v", res.Rows)
	}
}

func TestBetween(t *testing.T) {
	db := testDB(t)
	res := q(t, db, `SELECT id FROM access WHERE id BETWEEN 3 AND 5 ORDER BY id`)
	if len(res.Rows) != 3 || res.Rows[0][0].AsInt() != 3 || res.Rows[2][0].AsInt() != 5 {
		t.Fatalf("BETWEEN: %v", res.Rows)
	}
	res = q(t, db, `SELECT id FROM access WHERE id NOT BETWEEN 3 AND 9`)
	if len(res.Rows) != 3 { // 1, 2, 10
		t.Fatalf("NOT BETWEEN: %v", res.Rows)
	}
	res = q(t, db, `SELECT id FROM access WHERE at BETWEEN '2007-03-01T10:00:00Z' AND '2007-03-01T12:00:00Z'`)
	if len(res.Rows) != 3 {
		t.Fatalf("time BETWEEN: %v", res.Rows)
	}
	if _, err := db.Exec(`SELECT id FROM access WHERE id BETWEEN 3`); err == nil {
		t.Error("half BETWEEN accepted")
	}
}

func TestMoreScalarFunctions(t *testing.T) {
	db := NewDatabase()
	q(t, db, `CREATE TABLE t (s TEXT, f FLOAT)`)
	q(t, db, `INSERT INTO t VALUES ('  padded  ', 2.6)`)
	res := q(t, db, `SELECT TRIM(s), SUBSTR(s, 3, 6), ROUND(f), ROUND(0 - f) FROM t`)
	row := res.Rows[0]
	if row[0].AsText() != "padded" {
		t.Errorf("TRIM: %q", row[0].AsText())
	}
	if row[1].AsText() != "padded" {
		t.Errorf("SUBSTR: %q", row[1].AsText())
	}
	if row[2].AsInt() != 3 || row[3].AsInt() != -3 {
		t.Errorf("ROUND: %v %v", row[2], row[3])
	}
	res = q(t, db, `SELECT SUBSTR(s, 100), SUBSTR(s, 1), SUBSTR(NULL, 1) FROM t`)
	row = res.Rows[0]
	if row[0].AsText() != "" || row[1].AsText() != "  padded  " || !row[2].IsNull() {
		t.Errorf("SUBSTR edges: %v", row)
	}
	if _, err := db.Exec(`SELECT SUBSTR(s) FROM t`); err == nil {
		t.Error("SUBSTR/1 accepted")
	}
	if _, err := db.Exec(`SELECT ROUND(s) FROM t`); err == nil {
		t.Error("ROUND of text accepted")
	}
}
