// Package arenasafe exercises the publication-safety analyzer: a
// prima:arena value may be filled freely while local, but no write
// may follow its publication (store, return, capture, send).
package arenasafe

import "sync/atomic"

// Box is immutable after publication.
//
// prima:arena
type Box struct {
	vals []int
	n    int
}

var shared *Box

// bad publishes the box and then keeps writing to it.
func bad() *Box {
	b := &Box{}
	shared = b
	b.n = 1 // want arenasafe "mutated after publication"
	return b
}

// leak publishes through a closure capture.
func leak(sink func(*Box)) {
	b := &Box{}
	f := func() { sink(b) }
	f()
	b.n = 2 // want arenasafe "mutated after publication"
}

// good does all its writes before publication.
func good() *Box {
	b := &Box{}
	b.n = 1
	b.vals = append(b.vals, 1)
	return b
}

// refresh reallocates after publishing: the new allocation is fresh,
// so the write is clean.
func refresh() *Box {
	b := &Box{}
	shared = b
	b = &Box{}
	b.n = 3
	return b
}

// Snapshot mimics the enforcement decision snapshot: built privately,
// published through an atomic pointer with RCU semantics, immutable
// afterwards.
//
// prima:arena
type Snapshot struct {
	version uint64
	bits    []uint64
}

var current atomic.Pointer[Snapshot]

// publishBad stores the snapshot for lock-free readers and then keeps
// compiling into it — readers observe a torn snapshot.
func publishBad(v uint64) {
	s := &Snapshot{version: v}
	current.Store(s)
	s.bits = append(s.bits, 1) // want arenasafe "mutated after publication" // want atomicsafe "mutated after atomic publication"
}

// publishGood freezes the snapshot before the RCU swap.
func publishGood(v uint64) {
	s := &Snapshot{version: v}
	s.bits = append(s.bits, 1)
	current.Store(s)
}

// republish swaps in a rebuilt snapshot; the stale one is never
// written again, only dropped for readers to drain.
func republish(v uint64) {
	s := &Snapshot{version: v}
	s.bits = append(s.bits, 1)
	old := current.Swap(s)
	_ = old
}
