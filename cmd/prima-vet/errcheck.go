package main

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// errcheck-lite flags discarded error results on the audit, codec and
// federation paths. A dropped error from audit.Log.Append or a codec
// Write* means an enforcement decision silently vanished from the
// audit trail — the exact failure §4's architecture exists to prevent.
//
// Scope is deliberately narrow: only calls to functions declared in
// this module whose names carry I/O-shaped prefixes are checked, so
// fmt.Println and friends stay out of scope.
var errcheckAnalyzer = &Analyzer{
	Name: "errcheck",
	Doc:  "audit/codec/federation errors must not be discarded",
	Run:  runErrcheck,
}

// errProneFuncs matches callee names that sit on audited I/O paths.
var errPronePrefixes = []string{
	"Append", "Write", "Read", "Encode", "Decode",
	"Marshal", "Unmarshal", "Parse", "Consolidate",
}

func errProneName(name string) bool {
	for _, p := range errPronePrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

func runErrcheck(p *Package) []Finding {
	var out []Finding
	for _, fd := range funcDecls(p) {
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.ExprStmt:
				if call, ok := x.X.(*ast.CallExpr); ok {
					if msg := discardedError(p, call, nil); msg != "" {
						out = append(out, Finding{
							Pos:      p.Fset.Position(call.Pos()),
							Analyzer: "errcheck",
							Message:  msg,
						})
					}
				}
			case *ast.AssignStmt:
				// _ = f(...) or a, _ := f(...) where the blank slot is
				// the error result.
				if len(x.Rhs) != 1 {
					return true
				}
				call, ok := x.Rhs[0].(*ast.CallExpr)
				if !ok {
					return true
				}
				if msg := discardedError(p, call, x.Lhs); msg != "" {
					out = append(out, Finding{
						Pos:      p.Fset.Position(call.Pos()),
						Analyzer: "errcheck",
						Message:  msg,
					})
				}
			}
			return true
		})
	}
	return out
}

// discardedError reports a non-empty message when call returns an
// error from a module-local, error-prone function and either lhs is
// nil (bare statement) or the error position on lhs is blank.
func discardedError(p *Package, call *ast.CallExpr, lhs []ast.Expr) string {
	name, sig := calleeNameAndSig(p, call)
	if name == "" || !errProneName(name) || sig == nil {
		return ""
	}
	errIdx := -1
	res := sig.Results()
	for i := 0; i < res.Len(); i++ {
		if named, ok := res.At(i).Type().(*types.Named); ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil {
			errIdx = i
		}
	}
	if errIdx < 0 {
		return ""
	}
	if lhs == nil {
		return fmt.Sprintf("result of %s is an error and is discarded", name)
	}
	if errIdx < len(lhs) {
		if id, ok := lhs[errIdx].(*ast.Ident); ok && id.Name == "_" {
			return fmt.Sprintf("error result of %s is assigned to the blank identifier", name)
		}
	}
	return ""
}

// calleeNameAndSig resolves the called function's name and signature,
// restricted to functions declared inside the analyzed module (path
// starts with the module path or is a local fixture package).
func calleeNameAndSig(p *Package, call *ast.CallExpr) (string, *types.Signature) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", nil
	}
	obj := p.Info.Uses[id]
	if obj == nil {
		obj = p.Info.Defs[id]
	}
	fn, ok := obj.(*types.Func)
	if !ok {
		return "", nil
	}
	pkg := fn.Pkg()
	if pkg == nil {
		return "", nil // builtins / universe
	}
	if !moduleLocalPath(p, pkg.Path()) {
		return "", nil
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return "", nil
	}
	return fn.Name(), sig
}

// moduleLocalPath reports whether path belongs to the module under
// analysis (the analyzed package itself, or any package sharing its
// module prefix).
func moduleLocalPath(p *Package, path string) bool {
	if path == p.Path {
		return true
	}
	mod := p.Path
	if i := strings.Index(mod, "/"); i >= 0 {
		mod = mod[:i]
	}
	return path == mod || strings.HasPrefix(path, mod+"/")
}
