package minidb

import (
	"fmt"
	"strings"
)

// ambiguous marks a bare column name that occurs in more than one
// joined table; such names must be qualified.
const ambiguous = -1

// fromResult is the materialized FROM clause: a synthetic schema
// (resolving bare and qualified column names) plus the joined rows.
type fromResult struct {
	table *Table
	rows  [][]Value
}

// resolveFrom materializes the FROM clause of a SELECT: the base
// table and any JOIN steps, with nested-loop evaluation of the ON
// predicates. Each step extends the visible schema, so an ON
// predicate can reference all tables joined so far.
func (db *Database) resolveFrom(s *SelectStmt) (*fromResult, error) {
	base, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	alias := s.TableAlias
	if alias == "" {
		alias = base.name
	}
	schema := &Table{name: "join", idx: make(map[string]int)}
	addCols(schema, base.Columns(), alias)

	// Index fast path: a top-level equality conjunct on an indexed
	// column narrows the base row source before filtering. Joined
	// queries are excluded: a qualified predicate like s.dept = 'x'
	// would otherwise be mistaken for a base-table column of the same
	// name and filter the wrong relation.
	var rows [][]Value
	if col, val, ok := indexableEq(s.Where); ok && len(s.Joins) == 0 {
		if indexed, hit := base.lookupEq(col, val); hit {
			rows = indexed
		}
	}
	if rows == nil {
		rows = base.snapshot()
	}

	for _, jc := range s.Joins {
		right, err := db.Table(jc.Table)
		if err != nil {
			return nil, err
		}
		ralias := jc.Alias
		if ralias == "" {
			ralias = right.name
		}
		offset := len(schema.cols)
		addCols(schema, right.Columns(), ralias)
		rightRows := right.snapshot()

		var joined [][]Value
		for _, lrow := range rows {
			matched := false
			for _, rrow := range rightRows {
				combined := make([]Value, 0, len(schema.cols))
				combined = append(combined, lrow...)
				combined = append(combined, rrow...)
				v, err := eval(jc.On, &rowEnv{table: schema, row: combined})
				if err != nil {
					return nil, fmt.Errorf("minidb: join ON: %w", err)
				}
				if b, ok := boolOf(v); ok && b {
					joined = append(joined, combined)
					matched = true
				}
			}
			if !matched && jc.Kind == JoinLeft {
				combined := make([]Value, len(schema.cols))
				copy(combined, lrow)
				for i := offset; i < len(schema.cols); i++ {
					combined[i] = Null()
				}
				joined = append(joined, combined)
			}
		}
		rows = joined
	}
	return &fromResult{table: schema, rows: rows}, nil
}

// addCols appends a table's columns to the synthetic schema under the
// given alias, registering "alias.col" always and the bare name when
// it stays unambiguous.
func addCols(schema *Table, cols []Column, alias string) {
	la := strings.ToLower(alias)
	for _, c := range cols {
		i := len(schema.cols)
		schema.cols = append(schema.cols, c)
		schema.idx[la+"."+strings.ToLower(c.Name)] = i
		bare := strings.ToLower(c.Name)
		if _, exists := schema.idx[bare]; exists {
			schema.idx[bare] = ambiguous
		} else {
			schema.idx[bare] = i
		}
	}
}

// explain renders the execution plan of a SELECT as one "plan" column
// with a row per step, without running the query.
func (db *Database) explain(s *SelectStmt) (*Result, error) {
	base, err := db.Table(s.Table)
	if err != nil {
		return nil, err
	}
	var lines []string
	source := fmt.Sprintf("scan %s (%d rows)", base.Name(), base.Len())
	if col, _, ok := indexableEq(s.Where); ok && len(s.Joins) == 0 {
		key := strings.ToLower(col)
		if dot := strings.LastIndexByte(key, '.'); dot >= 0 {
			key = key[dot+1:]
		}
		base.mu.RLock()
		_, indexed := base.indexes[key]
		base.mu.RUnlock()
		if indexed {
			source = fmt.Sprintf("index lookup %s(%s)", base.Name(), key)
		}
	}
	lines = append(lines, source)
	for _, jc := range s.Joins {
		right, err := db.Table(jc.Table)
		if err != nil {
			return nil, err
		}
		kind := "inner"
		if jc.Kind == JoinLeft {
			kind = "left"
		}
		lines = append(lines, fmt.Sprintf("nested-loop %s join %s (%d rows) on %s",
			kind, right.Name(), right.Len(), jc.On))
	}
	if s.Where != nil {
		lines = append(lines, fmt.Sprintf("filter %s", s.Where))
	}
	if len(s.GroupBy) > 0 || s.Having != nil {
		g := make([]string, len(s.GroupBy))
		for i, e := range s.GroupBy {
			g[i] = e.String()
		}
		lines = append(lines, fmt.Sprintf("group by [%s]", strings.Join(g, ", ")))
		if s.Having != nil {
			lines = append(lines, fmt.Sprintf("having %s", s.Having))
		}
	}
	if s.Distinct {
		lines = append(lines, "distinct")
	}
	if len(s.OrderBy) > 0 {
		lines = append(lines, fmt.Sprintf("sort (%d keys)", len(s.OrderBy)))
	}
	if s.Limit >= 0 {
		lines = append(lines, fmt.Sprintf("limit %d offset %d", s.Limit, s.Offset))
	}
	res := &Result{Columns: []string{"plan"}}
	for _, l := range lines {
		res.Rows = append(res.Rows, []Value{Text(l)})
	}
	return res, nil
}
