// Package prima is a Go implementation of PRIMA — the PRIvacy
// Management Architecture of Bhatti & Grandison (IBM Almaden, 2007),
// "Towards Improved Privacy Policy Coverage in Healthcare Using
// Policy Refinement".
//
// PRIMA closes the gap between a healthcare organization's published
// privacy policy (its ideal workflow) and the organization's actual
// practice as recorded in audit logs (its real workflow, dominated by
// break-the-glass exception access). It does so with two formal
// tools:
//
//   - Policy coverage (paper §3.2): the fraction of the audit log's
//     ground rules that the policy store's range contains.
//   - Policy refinement (paper §4.3): Filter the audit log down to
//     exception-based practice, extract recurring multi-user patterns
//     with a SQL GROUP BY/HAVING analysis (or Apriori mining), prune
//     the ones the policy already covers, and hand the remainder to a
//     privacy officer for adoption.
//
// The System type wires together every substrate the paper's
// architecture names: a relational engine (minidb), Hippocratic
// Database Active Enforcement and Compliance Auditing middleware
// (hdb), patient consent (consent), audit-log federation (audit), the
// coverage/refinement core (core), Apriori mining (mining), a
// clinical workflow simulator (workflow) and a tree-record adapter
// (treerec).
//
// Quick start:
//
//	sys := prima.New(prima.Config{})
//	sys.DB().MustExec(`CREATE TABLE records (patient TEXT, referral TEXT)`)
//	_ = sys.RegisterTable(prima.TableMapping{
//	    Table: "records", PatientCol: "patient",
//	    Categories: map[string]string{"referral": "referral"},
//	})
//	_, _ = sys.AddRule("data=general & purpose=treatment & authorized=nurse")
//	res, _, err := sys.Query("tim", "nurse", "treatment", `SELECT referral FROM records`)
//
// See examples/ for runnable end-to-end scenarios, DESIGN.md for the
// architecture inventory and EXPERIMENTS.md for the paper-vs-measured
// record.
package prima
