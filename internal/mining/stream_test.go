package mining_test

import (
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/scenario"
)

// TestExtractorThroughStreamSession drives the Apriori extractor
// through the streaming session's fallback path: mining.Extractor is
// not index-servable, so the session must accumulate practice rows
// via the log's Delta cursor and feed the extractor exactly what the
// sequential session would.
func TestExtractorThroughStreamSession(t *testing.T) {
	if core.IndexExtractable(core.Options{Extractor: mining.Extractor{}}) {
		t.Fatal("mining.Extractor must take the delta-fed fallback path")
	}

	v := scenario.Vocabulary()
	opts := core.Options{MinSupport: 3, Extractor: mining.Extractor{}}
	psSeq := scenario.PolicyStore()
	psStream := scenario.PolicyStore()

	l := audit.NewLog("s")
	seq := core.NewSession(psSeq, v, opts)
	stream := core.NewStreamSession(l, psStream, v, opts)

	table := scenario.Table1()
	var cumulative []audit.Entry
	for i, chunk := range [][]audit.Entry{table[:4], table[4:7], table[7:]} {
		cumulative = append(cumulative, chunk...)
		if err := l.Append(chunk...); err != nil {
			t.Fatal(err)
		}
		seqRound, err := seq.Run(cumulative, core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		streamRound, err := stream.Run(core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		var want, got []string
		for _, p := range seqRound.Patterns {
			want = append(want, p.Rule.Key())
		}
		for _, p := range streamRound.Patterns {
			got = append(got, p.Rule.Key())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: stream %v, seq %v", i, got, want)
		}
		if streamRound.CoverageAfter != seqRound.CoverageAfter {
			t.Fatalf("chunk %d coverage: %v vs %v", i, streamRound.CoverageAfter, seqRound.CoverageAfter)
		}
	}
	if psStream.Len() != psSeq.Len() {
		t.Fatalf("policies diverge: %d vs %d rules", psStream.Len(), psSeq.Len())
	}
}
