// Command prima-vet is the repo's custom static-analysis pass. It
// type-checks packages with only the standard library (go/ast,
// go/parser, go/types) and applies two layers of repo-specific
// analyzers.
//
// Per-package (layer 1):
//
//	lockcheck   lock discipline on mutex-guarded structs
//	puritycheck determinism of the coverage/refinement algebra
//	errcheck    no discarded errors on audit/codec/federation paths
//	codecpair   Encode*/Decode* symmetry with round-trip tests
//
// Interprocedural (layer 2, whole-module call graph + CFG dataflow):
//
//	lockorder   lock acquisition graph; cycles and pinned-order
//	            inversions (lockorder.txt) are potential deadlocks
//	phileak     taint from prima:phi fields into logs, error strings,
//	            and responses that bypass prima:redact sanitizers
//	arenasafe   no mutation of prima:arena values after publication
//
// Usage:
//
//	prima-vet [-list] [-run a,b] [packages]
//
// Packages default to ./... . Exit status is 0 when clean, 1 when
// any analyzer reports findings, 2 on usage or load errors (unknown
// -run names included).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("prima-vet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	runList := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: prima-vet [-list] [-run a,b] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-12s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	selected, err := selectAnalyzers(*runList)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	wd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "prima-vet: %v\n", err)
		return 2
	}
	loader, err := NewLoader(wd)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fmt.Fprintf(stderr, "%v\n", err)
		return 2
	}

	var pkgs []*Package
	found := 0
	for _, dir := range dirs {
		pkg, err := loader.Load(dir)
		if err != nil {
			fmt.Fprintf(stderr, "prima-vet: %s: %v\n", dir, err)
			return 2
		}
		pkgs = append(pkgs, pkg)
		for _, f := range runSelected(selected, pkg) {
			fmt.Fprintln(stdout, f)
			found++
		}
	}

	// Layer 2: one whole-program pass over everything that loaded.
	prog := BuildProgram(loader, pkgs)
	for _, f := range runProgramAnalyzers(selected, prog) {
		fmt.Fprintln(stdout, f)
		found++
	}

	if found > 0 {
		fmt.Fprintf(stderr, "prima-vet: %d finding(s)\n", found)
		return 1
	}
	return 0
}
