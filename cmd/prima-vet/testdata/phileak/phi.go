// Package phileak exercises the PHI taint analyzer: values read from
// prima:phi fields must not reach prints, logs, or error strings
// except through a prima:redact helper.
package phileak

import (
	"fmt"
	"log"
)

// Record is an audit-like row.
type Record struct {
	Name string // prima:phi — patient-identifying
	Op   string
}

// Mask is this package's sanctioned redaction helper.
//
// prima:redact
func Mask(s string) string {
	if s == "" {
		return s
	}
	return s[:1] + "***"
}

func direct(r Record) {
	fmt.Println(r.Name) // want phileak "PHI may reach fmt.Println"
	fmt.Println(r.Op)   // clean: Op is not marked
}

func viaLocal(r Record) {
	name := r.Name
	msg := "user=" + name
	log.Printf("%s", msg) // want phileak "PHI may reach log.Printf"
}

// logName prints its argument; callers passing PHI are flagged at
// their call sites, not here (the parameter itself is not PHI).
func logName(s string) {
	log.Println(s)
}

func interproc(r Record) {
	logName(r.Name) // want phileak "PHI passed to"
}

func redacted(r Record) {
	fmt.Println(Mask(r.Name)) // clean: routed through the redactor
}

func carrier(r Record) {
	fmt.Printf("%v\n", r) // want phileak "PHI may reach fmt.Printf"
}

// rebound demonstrates the SSA rebase's flow-sensitivity: the local
// briefly holds PHI but is rebound to a clean value before the print,
// so the old version's taint does not leak onto the new one.
func rebound(r Record) {
	s := r.Name
	s = "redacted"
	fmt.Println(s) // clean: the printed version never held PHI
}

// reboundBranch still reports: only one branch cleans the value, and
// the phi joining the two versions keeps the tainted operand.
func reboundBranch(r Record, ok bool) {
	s := r.Name
	if ok {
		s = "redacted"
	}
	fmt.Println(s) // want phileak "PHI may reach fmt.Println"
}
