package policy

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/vocab"
)

// Policy is a collection of rules symbolically tied to a data store
// (Definition 7): the policy store P_PS or the audit logs P_AL.
// Policies are safe for concurrent use: in a PRIMA deployment the
// enforcement middleware reads the store while refinement sessions
// adopt rules into it.
type Policy struct {
	Name string // e.g. "PS" (policy store) or "AL" (audit logs)

	mu    sync.RWMutex
	rules []Rule
}

// New returns an empty policy with the given name.
func New(name string) *Policy { return &Policy{Name: name} }

// FromRules builds a policy from rules, skipping exact duplicates.
func FromRules(name string, rules ...Rule) *Policy {
	p := New(name)
	for _, r := range rules {
		p.Add(r)
	}
	return p
}

// Add appends rule r unless an identical rule is already present.
// It reports whether the rule was added.
func (p *Policy) Add(r Rule) bool {
	if r.IsZero() {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addLocked(r)
}

func (p *Policy) addLocked(r Rule) bool {
	key := r.Key()
	for _, e := range p.rules {
		if e.Key() == key {
			return false
		}
	}
	p.rules = append(p.rules, r)
	return true
}

// Remove deletes the rule with the same canonical key, reporting
// whether a rule was removed.
func (p *Policy) Remove(r Rule) bool {
	key := r.Key()
	p.mu.Lock()
	defer p.mu.Unlock()
	for i, e := range p.rules {
		if e.Key() == key {
			p.rules = append(p.rules[:i:i], p.rules[i+1:]...)
			return true
		}
	}
	return false
}

// Rules returns a copy of the policy's rules in insertion order.
func (p *Policy) Rules() []Rule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Rule, len(p.rules))
	copy(out, p.rules)
	return out
}

// SetRules replaces the policy's rules wholesale (deduplicated),
// keeping the Policy identity — callers holding a reference (the
// enforcer, a refinement session) observe the new rule set.
func (p *Policy) SetRules(rules []Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = p.rules[:0:0]
	for _, r := range rules {
		if !r.IsZero() {
			p.addLocked(r)
		}
	}
}

// Len is the cardinality #P of the policy.
func (p *Policy) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rules)
}

// Contains reports whether an identical rule is present.
func (p *Policy) Contains(r Rule) bool {
	key := r.Key()
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, e := range p.rules {
		if e.Key() == key {
			return true
		}
	}
	return false
}

// IsGround reports whether every rule is ground under v.
func (p *Policy) IsGround(v *vocab.Vocabulary) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, r := range p.rules {
		if !r.IsGround(v) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the policy sharing no mutable state.
func (p *Policy) Clone() *Policy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := New(p.Name)
	out.rules = append([]Rule(nil), p.rules...)
	return out
}

// String renders the policy one rule per line.
func (p *Policy) String() string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := p.Name + ":\n"
	for i, r := range p.rules {
		s += fmt.Sprintf("  %d. %s\n", i+1, r)
	}
	return s
}

// Range is the set of ground rules derivable from a policy
// (Definition 8), deduplicated by canonical key.
type Range struct {
	rules []Rule
	keys  map[string]int // canonical key -> index into rules
}

// DefaultRangeLimit bounds range expansion; composite rules over wide
// vocabularies explode combinatorially and an unbounded expansion is a
// denial-of-service hazard for a policy service.
const DefaultRangeLimit = 1 << 20

// ErrRangeTooLarge is returned when range expansion exceeds the limit.
var ErrRangeTooLarge = fmt.Errorf("policy: range expansion exceeds limit")

// NewRange computes Range_P under v (the paper's getRange(P, V)).
// limit ≤ 0 applies DefaultRangeLimit.
func NewRange(p *Policy, v *vocab.Vocabulary, limit int) (*Range, error) {
	if limit <= 0 {
		limit = DefaultRangeLimit
	}
	rg := &Range{keys: make(map[string]int)}
	for _, r := range p.Rules() {
		grounds, truncated := r.Groundings(v, limit-len(rg.rules)+1)
		if truncated || len(rg.rules)+len(grounds) > limit {
			return nil, fmt.Errorf("%w (limit %d) expanding %s", ErrRangeTooLarge, limit, r)
		}
		for _, g := range grounds {
			rg.add(g)
		}
	}
	return rg, nil
}

func (rg *Range) add(g Rule) {
	key := g.Key()
	if _, ok := rg.keys[key]; ok {
		return
	}
	rg.keys[key] = len(rg.rules)
	rg.rules = append(rg.rules, g)
}

// Len is the cardinality #Range_P.
func (rg *Range) Len() int { return len(rg.rules) }

// Rules returns the ground rules in first-derived order.
func (rg *Range) Rules() []Rule { return rg.rules }

// Contains reports whether ground rule g is in the range.
func (rg *Range) Contains(g Rule) bool {
	_, ok := rg.keys[g.Key()]
	return ok
}

// Intersect returns the rules common to rg and other, using rule
// identity over canonical keys (ground-rule equivalence, Definition 6).
func (rg *Range) Intersect(other *Range) []Rule {
	var out []Rule
	for _, r := range rg.rules {
		if other.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

// Complement returns the rules of rg that are not in other — the
// paper's getComplement used by Prune (Algorithm 6).
func (rg *Range) Complement(other *Range) []Rule {
	var out []Rule
	for _, r := range rg.rules {
		if !other.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

// Keys returns the sorted canonical keys of the range; useful for
// deterministic comparisons in tests.
func (rg *Range) Keys() []string {
	out := make([]string, 0, len(rg.keys))
	for k := range rg.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
