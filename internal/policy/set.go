package policy

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/vocab"
)

// Policy is a collection of rules symbolically tied to a data store
// (Definition 7): the policy store P_PS or the audit logs P_AL.
// Policies are safe for concurrent use: in a PRIMA deployment the
// enforcement middleware reads the store while refinement sessions
// adopt rules into it.
type Policy struct {
	Name string // e.g. "PS" (policy store) or "AL" (audit logs)

	mu    sync.RWMutex
	rules []Rule
	// index maps canonical rule keys to their position in rules,
	// making Add/Contains/Remove O(1) instead of a linear scan.
	index map[string]int
	// version counts mutations. Every change to the rule set bumps it
	// while mu is held, so caches (the enforcer's policy range,
	// RangeCache, the enforcement decision snapshot) detect staleness
	// with one integer compare instead of re-fingerprinting the store.
	// The counter is atomic so the per-query validity probe on the
	// enforcement fast path is a lock-free load.
	version atomic.Uint64
}

// New returns an empty policy with the given name.
func New(name string) *Policy { return &Policy{Name: name} }

// FromRules builds a policy from rules, skipping exact duplicates.
func FromRules(name string, rules ...Rule) *Policy {
	p := New(name)
	for _, r := range rules {
		p.Add(r)
	}
	return p
}

// Add appends rule r unless an identical rule is already present.
// It reports whether the rule was added.
func (p *Policy) Add(r Rule) bool {
	if r.IsZero() {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.addLocked(r)
}

func (p *Policy) addLocked(r Rule) bool {
	key := r.Key()
	if _, ok := p.index[key]; ok {
		return false
	}
	if p.index == nil {
		p.index = make(map[string]int)
	}
	p.index[key] = len(p.rules)
	p.rules = append(p.rules, r)
	p.version.Add(1)
	return true
}

// Remove deletes the rule with the same canonical key, reporting
// whether a rule was removed. Removal swaps the last rule into the
// vacated slot (O(1)); see Rules for the ordering consequence.
func (p *Policy) Remove(r Rule) bool {
	key := r.Key()
	p.mu.Lock()
	defer p.mu.Unlock()
	i, ok := p.index[key]
	if !ok {
		return false
	}
	last := len(p.rules) - 1
	if i != last {
		p.rules[i] = p.rules[last]
		p.index[p.rules[i].Key()] = i
	}
	p.rules[last] = Rule{}
	p.rules = p.rules[:last]
	delete(p.index, key)
	p.version.Add(1)
	return true
}

// Rules returns a copy of the policy's rules. The order is insertion
// order, except that Remove moves the last rule into the removed
// rule's slot.
func (p *Policy) Rules() []Rule {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := make([]Rule, len(p.rules))
	copy(out, p.rules)
	return out
}

// SetRules replaces the policy's rules wholesale (deduplicated),
// keeping the Policy identity — callers holding a reference (the
// enforcer, a refinement session) observe the new rule set.
func (p *Policy) SetRules(rules []Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules = p.rules[:0:0]
	p.index = make(map[string]int, len(rules))
	p.version.Add(1)
	for _, r := range rules {
		if !r.IsZero() {
			p.addLocked(r)
		}
	}
}

// Version returns the mutation counter: it increases on every change
// to the rule set, so a cache can validate a derived artifact (the
// policy's ground range, the enforcement decision snapshot) with one
// integer compare. The read is lock-free.
func (p *Policy) Version() uint64 {
	return p.version.Load()
}

// Len is the cardinality #P of the policy.
func (p *Policy) Len() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.rules)
}

// Contains reports whether an identical rule is present.
func (p *Policy) Contains(r Rule) bool {
	key := r.Key()
	p.mu.RLock()
	defer p.mu.RUnlock()
	_, ok := p.index[key]
	return ok
}

// IsGround reports whether every rule is ground under v.
func (p *Policy) IsGround(v *vocab.Vocabulary) bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	for _, r := range p.rules {
		if !r.IsGround(v) {
			return false
		}
	}
	return true
}

// Clone returns a copy of the policy sharing no mutable state.
func (p *Policy) Clone() *Policy {
	p.mu.RLock()
	defer p.mu.RUnlock()
	out := New(p.Name)
	out.rules = append([]Rule(nil), p.rules...)
	out.index = make(map[string]int, len(p.index))
	for k, i := range p.index {
		out.index[k] = i
	}
	return out
}

// String renders the policy one rule per line.
func (p *Policy) String() string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	s := p.Name + ":\n"
	for i, r := range p.rules {
		s += fmt.Sprintf("  %d. %s\n", i+1, r)
	}
	return s
}

// Range is the set of ground rules derivable from a policy
// (Definition 8), deduplicated by canonical key.
//
// prima:arena — a Range is built once over the grounding arena's flat
// term arrays and key builder, then shared lock-free (RangeCache, the
// enforcer); prima-vet's arenasafe analyzer rejects any write to a
// Range after it has been published.
type Range struct {
	rules []Rule
	keys  map[string]int // canonical key -> index into rules
}

// DefaultRangeLimit bounds range expansion; composite rules over wide
// vocabularies explode combinatorially and an unbounded expansion is a
// denial-of-service hazard for a policy service.
const DefaultRangeLimit = 1 << 20

// ErrRangeTooLarge is returned when range expansion exceeds the limit.
var ErrRangeTooLarge = fmt.Errorf("policy: range expansion exceeds limit")

// NewRange computes Range_P under v (the paper's getRange(P, V)).
// limit ≤ 0 applies DefaultRangeLimit.
//
// When the policy holds several rules and GOMAXPROCS > 1, the
// groundings of each rule are expanded on a worker pool and merged
// into the dedup map in rule order, so the result — rule order, key
// set, and the ErrRangeTooLarge decision — is identical to the
// sequential expansion.
func NewRange(p *Policy, v *vocab.Vocabulary, limit int) (*Range, error) {
	if limit <= 0 {
		limit = DefaultRangeLimit
	}
	rules := p.Rules()
	workers := runtime.GOMAXPROCS(0)
	if workers > len(rules) {
		workers = len(rules)
	}
	if workers <= 1 {
		return newRangeSequential(rules, v, limit)
	}
	return newRangeParallel(rules, v, limit, workers)
}

// expandSets derives the keyed ground set of every rule's terms up
// front, sharing identical composite terms across rules via a memo,
// and estimates the total grounding count (clamped at limit) so the
// dedup map can be presized. Running this in the calling goroutine
// keeps all vocabulary access single-threaded; workers then only
// enumerate cartesian products.
func expandSets(rules []Rule, v *vocab.Vocabulary, limit int) ([][][]Term, int) {
	memo := make(map[string][]Term)
	sets := make([][][]Term, len(rules))
	est := 0
	for i, r := range rules {
		sets[i] = keyedSets(r.terms, v, memo)
		n := 1
		for _, s := range sets[i] {
			n *= len(s)
			if n > limit {
				n = limit
				break
			}
		}
		est += n
		if est > limit {
			est = limit
		}
	}
	return sets, est
}

func newRangeSequential(rules []Rule, v *vocab.Vocabulary, limit int) (*Range, error) {
	sets, est := expandSets(rules, v, limit)
	rg := &Range{keys: make(map[string]int, est), rules: make([]Rule, 0, est)}
	for i, r := range rules {
		grounds, truncated := groundProduct(sets[i], limit-len(rg.rules)+1)
		if truncated || len(rg.rules)+len(grounds) > limit {
			return nil, fmt.Errorf("%w (limit %d) expanding %s", ErrRangeTooLarge, limit, r)
		}
		for _, g := range grounds {
			rg.add(g)
		}
	}
	return rg, nil
}

// newRangeParallel fans the per-rule product enumerations out across
// workers and merges the batches in rule order. Each worker expands
// with cap limit+1 (it cannot know how much of the budget dedup will
// consume), and the merge re-derives the exact sequential truncation
// decision from the batch size and the deduplicated count so far.
func newRangeParallel(rules []Rule, v *vocab.Vocabulary, limit, workers int) (*Range, error) {
	sets, est := expandSets(rules, v, limit)
	type batch struct {
		grounds   []Rule
		truncated bool
	}
	batches := make([]batch, len(rules))
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				g, tr := groundProduct(sets[i], limit+1)
				batches[i] = batch{grounds: g, truncated: tr}
			}
		}()
	}
	for i := range rules {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	rg := &Range{keys: make(map[string]int, est), rules: make([]Rule, 0, est)}
	for i, r := range rules {
		b := batches[i]
		// Sequential would have expanded with cap limit-#rg+1; it
		// truncates iff the rule's grounding count exceeds that cap,
		// and errors on truncation or on exceeding the limit.
		lim := limit - len(rg.rules) + 1
		if b.truncated || len(b.grounds) > lim || len(rg.rules)+len(b.grounds) > limit {
			return nil, fmt.Errorf("%w (limit %d) expanding %s", ErrRangeTooLarge, limit, r)
		}
		for _, g := range b.grounds {
			rg.add(g)
		}
	}
	return rg, nil
}

func (rg *Range) add(g Rule) {
	key := g.Key()
	if _, ok := rg.keys[key]; ok {
		return
	}
	rg.keys[key] = len(rg.rules)
	rg.rules = append(rg.rules, g)
}

// Len is the cardinality #Range_P.
func (rg *Range) Len() int { return len(rg.rules) }

// Rules returns the ground rules in first-derived order.
func (rg *Range) Rules() []Rule { return rg.rules }

// Contains reports whether ground rule g is in the range.
func (rg *Range) Contains(g Rule) bool {
	_, ok := rg.keys[g.Key()]
	return ok
}

// ContainsKey reports whether a ground rule with the given canonical
// key is in the range; the key-only form lets callers that already
// hold a canonical key (audit entries, the enforcer) skip rule
// construction entirely.
func (rg *Range) ContainsKey(key string) bool {
	_, ok := rg.keys[key]
	return ok
}

// Intersect returns the rules common to rg and other, using rule
// identity over canonical keys (ground-rule equivalence, Definition 6).
func (rg *Range) Intersect(other *Range) []Rule {
	var out []Rule
	for _, r := range rg.rules {
		if other.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

// IntersectCount returns #(rg ∩ other) without materializing the
// intersection, counting membership against the smaller side — the
// quantity Algorithm 1 actually needs.
func (rg *Range) IntersectCount(other *Range) int {
	small, big := rg, other
	if big.Len() < small.Len() {
		small, big = big, small
	}
	n := 0
	for key := range small.keys {
		if _, ok := big.keys[key]; ok {
			n++
		}
	}
	return n
}

// Complement returns the rules of rg that are not in other — the
// paper's getComplement used by Prune (Algorithm 6).
func (rg *Range) Complement(other *Range) []Rule {
	var out []Rule
	for _, r := range rg.rules {
		if !other.Contains(r) {
			out = append(out, r)
		}
	}
	return out
}

// Keys returns the sorted canonical keys of the range; useful for
// deterministic comparisons in tests.
func (rg *Range) Keys() []string {
	out := make([]string, 0, len(rg.keys))
	for k := range rg.keys {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
