// Package errfix triggers the errcheck analyzer.
package errfix

import "errors"

// AppendEntry stands in for audit.Log.Append: module-local, I/O-shaped
// name, error result.
func AppendEntry(s string) error {
	if s == "" {
		return errors.New("empty entry")
	}
	return nil
}

// ParseCount returns a value and an error.
func ParseCount(s string) (int, error) {
	if s == "" {
		return 0, errors.New("empty count")
	}
	return len(s), nil
}

func Bad() {
	AppendEntry("dropped")      // want errcheck "result of AppendEntry is an error and is discarded"
	_ = AppendEntry("blanked")  // want errcheck "error result of AppendEntry is assigned to the blank identifier"
	n, _ := ParseCount("seven") // want errcheck "error result of ParseCount is assigned to the blank identifier"
	_ = n
}

func Good() (int, error) {
	if err := AppendEntry("kept"); err != nil {
		return 0, err
	}
	return ParseCount("kept")
}
