package minidb_test

import (
	"fmt"

	"repro/internal/minidb"
)

// Example runs the paper's Algorithm 5 analysis verbatim against the
// engine: the GROUP BY / HAVING statement over an audit table.
func Example() {
	db := minidb.NewDatabase()
	db.MustExec(`CREATE TABLE practice (usr TEXT, data TEXT, purpose TEXT, authorized TEXT)`)
	db.MustExec(`INSERT INTO practice VALUES
		('Mark', 'Referral', 'Registration', 'Nurse'),
		('Tim',  'Referral', 'Registration', 'Nurse'),
		('Bob',  'Referral', 'Registration', 'Nurse'),
		('Mark', 'Referral', 'Registration', 'Nurse'),
		('Mark', 'Referral', 'Registration', 'Nurse'),
		('Eve',  'Psychiatry', 'Research',   'Clerk')`)
	res := db.MustExec(`
		SELECT data, purpose, authorized, COUNT(*) AS support
		FROM practice
		GROUP BY data, purpose, authorized
		HAVING COUNT(*) >= 5 AND COUNT(DISTINCT usr) > 1`)
	for i := range res.Rows {
		fmt.Println(res.RowStrings(i))
	}
	// Output: [Referral Registration Nurse 5]
}

// Example_join correlates an audit table with a staff directory.
func Example_join() {
	db := minidb.NewDatabase()
	db.MustExec(`CREATE TABLE access (usr TEXT, data TEXT)`)
	db.MustExec(`CREATE TABLE staff (name TEXT, dept TEXT)`)
	db.MustExec(`INSERT INTO access VALUES ('mark', 'referral'), ('amy', 'address')`)
	db.MustExec(`INSERT INTO staff VALUES ('mark', 'er'), ('amy', 'billing')`)
	res := db.MustExec(`
		SELECT a.data, s.dept FROM access a
		JOIN staff s ON a.usr = s.name
		ORDER BY a.data`)
	for i := range res.Rows {
		fmt.Println(res.RowStrings(i))
	}
	// Output:
	// [address billing]
	// [referral er]
}

// Example_explain shows the plan description, including index use.
func Example_explain() {
	db := minidb.NewDatabase()
	db.MustExec(`CREATE TABLE t (id INT, usr TEXT)`)
	db.MustExec(`INSERT INTO t VALUES (1, 'a'), (2, 'b')`)
	db.MustExec(`CREATE INDEX usr_ix ON t (usr)`)
	res := db.MustExec(`EXPLAIN SELECT id FROM t WHERE usr = 'a'`)
	fmt.Println(res.Rows[0][0].AsText())
	// Output: index lookup t(usr)
}
