package core

import (
	"fmt"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// DefaultAttrs is the paper's default analysis attribute set A: the
// policy-relevant projection of the audit schema.
var DefaultAttrs = []string{"data", "purpose", "authorized"}

// Options parameterizes the refinement pipeline (Algorithm 4's f and
// c, plus extraction pluggability).
type Options struct {
	// Attrs is the attribute subset A of the audit schema to analyse.
	// Valid attributes: data, purpose, authorized, user, op, status.
	// Defaults to DefaultAttrs.
	Attrs []string
	// MinSupport is the threshold frequency f (paper default 5). The
	// paper's prose says patterns must occur "at least f" times while
	// Algorithm 5 writes COUNT(*) > f; the §5 walk-through (a pattern
	// with exactly 5 occurrences discovered with f = 5) requires the
	// ≥ reading, which is the default. Set StrictGreater for the
	// literal Algorithm 5 comparator.
	MinSupport int
	// MinDistinctUsers is the condition c: COUNT(DISTINCT user) must
	// exceed MinDistinctUsers - 1, i.e. at least this many distinct
	// users. Paper default: 2 (COUNT(DISTINCT user) > 1).
	MinDistinctUsers int
	// StrictGreater switches the support comparator to COUNT(*) > f.
	StrictGreater bool
	// Extractor performs the data analysis; nil selects the
	// SQL-backed extractor (Algorithm 5 verbatim on minidb).
	Extractor PatternExtractor
}

// withDefaults normalizes options.
func (o Options) withDefaults() Options {
	if len(o.Attrs) == 0 {
		o.Attrs = DefaultAttrs
	}
	if o.MinSupport == 0 {
		o.MinSupport = 5
	}
	if o.MinDistinctUsers == 0 {
		o.MinDistinctUsers = 2
	}
	if o.Extractor == nil {
		o.Extractor = SQLExtractor{}
	}
	return o
}

// validAttrs are the audit-schema attributes an analysis may group by.
var validAttrs = map[string]bool{
	"data": true, "purpose": true, "authorized": true,
	"user": true, "op": true, "status": true,
}

func checkAttrs(attrs []string) error {
	seen := map[string]bool{}
	for _, a := range attrs {
		k := vocab.Norm(a)
		if !validAttrs[k] {
			return fmt.Errorf("core: invalid analysis attribute %q", a)
		}
		if seen[k] {
			return fmt.Errorf("core: duplicate analysis attribute %q", a)
		}
		seen[k] = true
	}
	return nil
}

// Pattern is one undocumented-practice candidate produced by the
// extraction phase: a ground rule over the analysis attributes plus
// its evidence.
type Pattern struct {
	Rule          policy.Rule
	Support       int // occurrences in Practice
	DistinctUsers int
	FirstSeen     time.Time
	LastSeen      time.Time
}

// String renders the pattern with its evidence.
func (p Pattern) String() string {
	return fmt.Sprintf("%s (support %d, %d users)", p.Rule, p.Support, p.DistinctUsers)
}

// PatternExtractor is the pluggable data-analysis interface of
// Algorithm 4 ("the data analysis routine has a well-defined
// interface that allows the extractPatterns algorithm to evolve").
type PatternExtractor interface {
	Extract(practice []audit.Entry, opts Options) ([]Pattern, error)
}

// Filter is Algorithm 3: it returns the informal-practice entries of
// the audit policy — the rows recorded with status 0 (exception-based
// access). Denied attempts (op = 0) are prohibitions, not practice,
// and are removed as Algorithm 2's "Filter(P_AL) (returns the
// non-prohibitions in policy P)" requires.
func Filter(entries []audit.Entry) []audit.Entry {
	var practice []audit.Entry
	for _, e := range entries {
		if e.Status == audit.Exception && e.Op == audit.Allow {
			practice = append(practice, e)
		}
	}
	return practice
}

// ExtractPatterns is Algorithm 4: it runs the configured data
// analysis over the practice entries.
func ExtractPatterns(practice []audit.Entry, opts Options) ([]Pattern, error) {
	opts = opts.withDefaults()
	if err := checkAttrs(opts.Attrs); err != nil {
		return nil, err
	}
	return opts.Extractor.Extract(practice, opts)
}

// Prune is Algorithm 6: it removes the patterns already covered by
// the policy store, returning the complement of the pattern range
// with respect to Range(P_PS). On the symbolic path the containment
// test Range_pattern ⊆ Range_PS is a cardinality comparison over the
// interval algebra — no pattern is ever ground-expanded, so there is
// no range limit to exceed.
func Prune(patterns []Pattern, ps *policy.Policy, v *vocab.Vocabulary) ([]Pattern, error) {
	if symbolicCoverage.Load() {
		srg := policy.SharedSym.Range(ps, v)
		var useful []Pattern
		for _, p := range patterns {
			sr, ok := policy.CompileRule(p.Rule, v)
			if !ok {
				// The zero rule grounds to the single empty rule, which no
				// store range contains; the materializing oracle keeps it.
				useful = append(useful, p)
				continue
			}
			if !srg.Covers(sr) {
				useful = append(useful, p)
			}
		}
		return useful, nil
	}
	rg, err := policy.Shared.Range(ps, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", ps.Name, err)
	}
	var useful []Pattern
	for _, p := range patterns {
		grounds, truncated := p.Rule.Groundings(v, policy.DefaultRangeLimit)
		if truncated {
			return nil, fmt.Errorf("core: pattern %s expands beyond the range limit", p.Rule)
		}
		covered := true
		for _, g := range grounds {
			if !rg.Contains(g) {
				covered = false
				break
			}
		}
		if !covered {
			useful = append(useful, p)
		}
	}
	return useful, nil
}

// Refinement is Algorithm 2: Filter, then ExtractPatterns, then
// Prune. It returns the useful patterns that a privacy officer should
// review for inclusion in the policy store.
func Refinement(ps *policy.Policy, entries []audit.Entry, v *vocab.Vocabulary, opts Options) ([]Pattern, error) {
	practice := Filter(entries)                      // line 1
	patterns, err := ExtractPatterns(practice, opts) // line 2
	if err != nil {
		return nil, err
	}
	return Prune(patterns, ps, v) // line 3
}
