// Package vocab implements the privacy policy vocabulary of PRIMA
// (Bhatti & Grandison, 2007), Figure 1: a forest of value hierarchies,
// one per policy attribute (data, purpose, authorized, ...).
//
// A value is "ground" (Definition 2) when it is atomic with respect to
// the vocabulary, i.e. it has no children in its attribute's hierarchy.
// A composite value can always be expanded into the set of ground
// values derivable from it (Definition 3); that set is called its
// ground set and is written RT' in the paper.
//
// Concurrency: a Vocabulary carries one RWMutex shared by all of its
// hierarchies. The value-level query methods (Contains, IsGround,
// GroundSet, Subsumes, ...) take the read lock and Add takes the write
// lock, so policy refinement can grow the vocabulary while the
// enforcement path consults it. Structural walks over raw *Node trees
// (Roots + Node.Children, used by the codecs and Merge) are not locked
// — they require the vocabulary to be quiescent.
package vocab

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Norm canonicalizes an attribute or value for comparison: values in
// policies, audit logs and vocabularies frequently differ only in case
// or surrounding whitespace ("Referral" vs "referral").
func Norm(s string) string {
	return strings.ToLower(strings.TrimSpace(s))
}

// Node is a single value in an attribute hierarchy. Direct Node
// traversal is unsynchronized; callers walking node trees must hold
// the vocabulary quiescent (the codecs and Merge do).
type Node struct {
	value    string // display form, as first registered
	parent   *Node  // nil for top-level values
	children []*Node
}

// Value returns the display form of the node's value.
func (n *Node) Value() string { return n.value }

// Parent returns the parent node, or nil for a top-level value.
func (n *Node) Parent() *Node { return n.parent }

// Children returns the direct children of the node. The returned slice
// must not be modified.
func (n *Node) Children() []*Node { return n.children }

// IsGround reports whether the value is atomic with respect to the
// vocabulary (Definition 2): it has no children.
func (n *Node) IsGround() bool { return len(n.children) == 0 }

// Hierarchy is the value hierarchy for one attribute. It locks through
// its owning Vocabulary, so one lock guards the whole forest.
type Hierarchy struct {
	owner *Vocabulary // lock + generation counter live on the owner
	attr  string      // display form
	roots []*Node
	nodes map[string]*Node // by Norm(value)

	// groundMemo caches GroundSet results by Norm(value). Ground-set
	// expansion (walk + sort) sits under every Range computation
	// (Definition 8); the memo makes repeat expansions O(1). Entries
	// are invalidated wholesale on Add. Only registered values are
	// memoized, so the memo is bounded by the hierarchy size. A
	// sync.Map because range expansion reads it from worker
	// goroutines concurrently.
	groundMemo sync.Map // string -> []string

	// icache publishes the Euler-tour interval numbering (interval.go),
	// validated against the owner's generation counter.
	icache intervalCache
}

// Attr returns the display form of the attribute name.
func (h *Hierarchy) Attr() string { return h.attr }

// Roots returns the top-level values of the hierarchy. Walking the
// returned nodes is unsynchronized; see the package comment.
func (h *Hierarchy) Roots() []*Node {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	return h.roots
}

// Len returns the number of values registered in the hierarchy.
func (h *Hierarchy) Len() int {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	return len(h.nodes)
}

// Node returns the node for value, or nil if the value is unknown.
// Walking the returned node is unsynchronized; see the package comment.
func (h *Hierarchy) Node(value string) *Node {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	return h.nodes[Norm(value)]
}

// Add registers value under parent. An empty parent registers a
// top-level value. It is an error to add a value twice or to reference
// an unknown parent.
func (h *Hierarchy) Add(parent, value string) error {
	key := Norm(value)
	if key == "" {
		return fmt.Errorf("vocab: empty value for attribute %q", h.attr)
	}
	h.owner.mu.Lock()
	defer h.owner.mu.Unlock()
	if _, ok := h.nodes[key]; ok {
		return fmt.Errorf("vocab: duplicate value %q for attribute %q", value, h.attr)
	}
	n := &Node{value: strings.TrimSpace(value)}
	if Norm(parent) == "" {
		h.roots = append(h.roots, n)
	} else {
		p, ok := h.nodes[Norm(parent)]
		if !ok {
			return fmt.Errorf("vocab: unknown parent %q for value %q (attribute %q)", parent, value, h.attr)
		}
		n.parent = p
		p.children = append(p.children, n)
	}
	h.nodes[key] = n
	h.owner.gen.Add(1)
	// Adding a value can change the ground set of every ancestor (and
	// turns a former leaf composite); drop the whole memo.
	h.groundMemo.Range(func(k, _ any) bool {
		h.groundMemo.Delete(k)
		return true
	})
	return nil
}

// MustAdd is Add that panics on error; intended for static sample data.
func (h *Hierarchy) MustAdd(parent, value string) {
	if err := h.Add(parent, value); err != nil {
		panic(err)
	}
}

// Contains reports whether value is registered in the hierarchy.
func (h *Hierarchy) Contains(value string) bool {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	_, ok := h.nodes[Norm(value)]
	return ok
}

// IsGround reports whether value is ground (Definition 2). A value
// that is not registered in the vocabulary cannot be subdivided by it
// and is therefore treated as ground.
func (h *Hierarchy) IsGround(value string) bool {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	n := h.nodes[Norm(value)]
	return n == nil || len(n.children) == 0
}

// GroundSet returns the ground values derivable from value — the set
// RT' of Definition 3 — in deterministic (sorted) order. For a ground
// value (including values unknown to the vocabulary) it returns the
// value itself. Results for registered values are memoized; the
// returned slice must not be modified.
func (h *Hierarchy) GroundSet(value string) []string {
	key := Norm(value)
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	n := h.nodes[key]
	if n == nil {
		return []string{strings.TrimSpace(value)}
	}
	if cached, ok := h.groundMemo.Load(key); ok {
		return cached.([]string)
	}
	var out []string
	var walk func(*Node)
	walk = func(m *Node) {
		if m.IsGround() {
			out = append(out, m.value)
			return
		}
		for _, c := range m.children {
			walk(c)
		}
	}
	walk(n)
	sort.Strings(out)
	h.groundMemo.Store(key, out)
	return out
}

// CompositeValues returns the normalized form of every registered
// value that is not ground (it has children), sorted. The enforcement
// decision snapshot uses it to tell "ground but unlisted ⇒ deny" apart
// from "composite ⇒ expand" without consulting the hierarchy per query.
func (h *Hierarchy) CompositeValues() []string {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	var out []string
	for key, n := range h.nodes {
		if len(n.children) > 0 {
			out = append(out, key)
		}
	}
	sort.Strings(out)
	return out
}

// Subsumes reports whether b lies in the subtree rooted at a
// (inclusive). Unknown values subsume only themselves.
func (h *Hierarchy) Subsumes(a, b string) bool {
	ka, kb := Norm(a), Norm(b)
	if ka == kb {
		return true
	}
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	nb := h.nodes[kb]
	for nb != nil {
		if Norm(nb.value) == ka {
			return true
		}
		nb = nb.parent
	}
	return false
}

// Ancestors returns the chain of ancestors of value from its parent up
// to its top-level value. Unknown or top-level values yield nil.
func (h *Hierarchy) Ancestors(value string) []string {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	n := h.nodes[Norm(value)]
	if n == nil {
		return nil
	}
	var out []string
	for p := n.parent; p != nil; p = p.parent {
		out = append(out, p.value)
	}
	return out
}

// Leaves returns every ground value in the hierarchy, sorted.
func (h *Hierarchy) Leaves() []string {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	var out []string
	for _, n := range h.nodes {
		if len(n.children) == 0 {
			out = append(out, n.value)
		}
	}
	sort.Strings(out)
	return out
}

// Values returns every value in the hierarchy, sorted.
func (h *Hierarchy) Values() []string {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	out := make([]string, 0, len(h.nodes))
	for _, n := range h.nodes {
		out = append(out, n.value)
	}
	sort.Strings(out)
	return out
}

// Depth returns the depth of value (top-level values have depth 1);
// zero for unknown values.
func (h *Hierarchy) Depth(value string) int {
	h.owner.mu.RLock()
	defer h.owner.mu.RUnlock()
	n := h.nodes[Norm(value)]
	if n == nil {
		return 0
	}
	d := 1
	for p := n.parent; p != nil; p = p.parent {
		d++
	}
	return d
}

// Vocabulary is a set of attribute hierarchies (paper Figure 1).
type Vocabulary struct {
	mu    sync.RWMutex
	attrs map[string]*Hierarchy // by Norm(attr)
	order []string              // display forms, registration order
	// gen counts mutations (attribute or value additions) and is read
	// lock-free by derived-artifact caches; see Generation.
	gen atomic.Uint64
}

// New returns an empty vocabulary.
func New() *Vocabulary {
	return &Vocabulary{attrs: make(map[string]*Hierarchy)}
}

// AddAttribute registers a new attribute and returns its hierarchy.
func (v *Vocabulary) AddAttribute(attr string) (*Hierarchy, error) {
	key := Norm(attr)
	if key == "" {
		return nil, fmt.Errorf("vocab: empty attribute name")
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.addAttributeLocked(key, attr)
}

func (v *Vocabulary) addAttributeLocked(key, attr string) (*Hierarchy, error) {
	if _, ok := v.attrs[key]; ok {
		return nil, fmt.Errorf("vocab: duplicate attribute %q", attr)
	}
	h := &Hierarchy{owner: v, attr: strings.TrimSpace(attr), nodes: make(map[string]*Node)}
	v.attrs[key] = h
	v.order = append(v.order, h.attr)
	v.gen.Add(1)
	return h, nil
}

// MustAttribute returns the hierarchy for attr, creating it if needed.
func (v *Vocabulary) MustAttribute(attr string) *Hierarchy {
	key := Norm(attr)
	v.mu.Lock()
	defer v.mu.Unlock()
	if h := v.attrs[key]; h != nil {
		return h
	}
	h, err := v.addAttributeLocked(key, attr)
	if err != nil {
		panic(err)
	}
	return h
}

// Hierarchy returns the hierarchy for attr, or nil if unregistered.
func (v *Vocabulary) Hierarchy(attr string) *Hierarchy {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return v.attrs[Norm(attr)]
}

// Attributes returns the registered attribute names in registration order.
func (v *Vocabulary) Attributes() []string {
	v.mu.RLock()
	defer v.mu.RUnlock()
	out := make([]string, len(v.order))
	copy(out, v.order)
	return out
}

// IsGround reports whether (attr, value) is ground (Definition 2).
// Values of unregistered attributes are atomic by definition.
func (v *Vocabulary) IsGround(attr, value string) bool {
	h := v.Hierarchy(attr)
	return h == nil || h.IsGround(value)
}

// GroundSet returns the ground set of (attr, value) (Definition 3).
func (v *Vocabulary) GroundSet(attr, value string) []string {
	h := v.Hierarchy(attr)
	if h == nil {
		return []string{strings.TrimSpace(value)}
	}
	return h.GroundSet(value)
}

// Subsumes reports whether (attr, a) subsumes (attr, b).
func (v *Vocabulary) Subsumes(attr, a, b string) bool {
	h := v.Hierarchy(attr)
	if h == nil {
		return Norm(a) == Norm(b)
	}
	return h.Subsumes(a, b)
}

// Equivalent reports whether (attr, a) and (attr, b) are equivalent in
// the sense of Definition 4: their ground sets intersect.
func (v *Vocabulary) Equivalent(attr, a, b string) bool {
	h := v.Hierarchy(attr)
	if h == nil {
		return Norm(a) == Norm(b)
	}
	ga := h.GroundSet(a)
	gb := h.GroundSet(b)
	set := make(map[string]bool, len(ga))
	for _, x := range ga {
		set[Norm(x)] = true
	}
	for _, y := range gb {
		if set[Norm(y)] {
			return true
		}
	}
	return false
}

// Generation returns a counter that increases on every mutation of
// the vocabulary — adding an attribute or adding a value to any
// hierarchy. Derived-artifact caches (policy.RangeCache, the
// enforcement decision snapshot) use it to detect staleness without
// walking the forest; the read is a single lock-free atomic load. The
// vocabulary has no removal operations, so equal generations imply an
// unchanged vocabulary.
func (v *Vocabulary) Generation() uint64 {
	return v.gen.Load()
}

// Size returns the total number of values across all hierarchies.
func (v *Vocabulary) Size() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	n := 0
	for _, h := range v.attrs {
		n += len(h.nodes)
	}
	return n
}

// Clone returns a deep copy of the vocabulary. The structure is
// snapshotted under the read lock and rebuilt outside it, so cloning
// never holds two vocabulary locks at once.
func (v *Vocabulary) Clone() *Vocabulary {
	type entry struct{ attr, parent, value string }
	v.mu.RLock()
	var entries []entry
	attrs := make([]string, 0, len(v.order))
	for _, attr := range v.order {
		attrs = append(attrs, attr)
		h := v.attrs[Norm(attr)]
		var walk func(parent string, n *Node)
		walk = func(parent string, n *Node) {
			entries = append(entries, entry{attr: attr, parent: parent, value: n.value})
			for _, c := range n.children {
				walk(n.value, c)
			}
		}
		for _, r := range h.roots {
			walk("", r)
		}
	}
	v.mu.RUnlock()

	out := New()
	for _, attr := range attrs {
		out.MustAttribute(attr)
	}
	for _, e := range entries {
		out.MustAttribute(e.attr).MustAdd(e.parent, e.value)
	}
	return out
}
