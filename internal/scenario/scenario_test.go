package scenario

import (
	"testing"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// TestFixturesAreVocabularyConsistent guards the reconstruction: every
// term used by the fixtures must exist in the Figure 1 vocabulary,
// otherwise coverage silently treats it as an unknown atomic value.
func TestFixturesAreVocabularyConsistent(t *testing.T) {
	v := Vocabulary()
	checkPolicy := func(name string, p *policy.Policy) {
		for _, r := range p.Rules() {
			for _, term := range r.Terms() {
				h := v.Hierarchy(term.Attr)
				if h == nil {
					t.Errorf("%s: unknown attribute %q", name, term.Attr)
					continue
				}
				if !h.Contains(term.Value) {
					t.Errorf("%s: %s=%s not in vocabulary", name, term.Attr, term.Value)
				}
			}
		}
	}
	checkPolicy("P_PS", PolicyStore())
	checkPolicy("P_AL", Figure3AuditPolicy())
	for i, e := range Table1() {
		if err := e.Validate(); err != nil {
			t.Errorf("t%d: %v", i+1, err)
		}
		if !v.Hierarchy("data").Contains(e.Data) {
			t.Errorf("t%d: data %q not in vocabulary", i+1, e.Data)
		}
		if !v.Hierarchy("purpose").Contains(e.Purpose) {
			t.Errorf("t%d: purpose %q not in vocabulary", i+1, e.Purpose)
		}
		if !v.Hierarchy("authorized").Contains(e.Authorized) {
			t.Errorf("t%d: role %q not in vocabulary", i+1, e.Authorized)
		}
	}
}

// TestTable1MatchesPaperRows pins the verbatim Table 1 content.
func TestTable1MatchesPaperRows(t *testing.T) {
	entries := Table1()
	if len(entries) != 10 {
		t.Fatalf("rows = %d", len(entries))
	}
	// Exceptions at t3, t4, t6, t7, t8, t9, t10.
	wantException := map[int]bool{3: true, 4: true, 6: true, 7: true, 8: true, 9: true, 10: true}
	for i, e := range entries {
		want := audit.Regular
		if wantException[i+1] {
			want = audit.Exception
		}
		if e.Status != want {
			t.Errorf("t%d status = %v", i+1, e.Status)
		}
		if e.Op != audit.Allow {
			t.Errorf("t%d op = %v (Table 1 is all allows)", i+1, e.Op)
		}
		if i > 0 && !entries[i].Time.After(entries[i-1].Time) {
			t.Errorf("t%d not after t%d", i+1, i)
		}
	}
	if entries[3].User != "Sarah" || entries[3].Authorized != "Doctor" {
		t.Errorf("t4 = %+v (paper: Sarah / Doctor)", entries[3])
	}
}

// TestFigure3RulesAreGroundAuditSide guards the Def. 8 accounting:
// each Figure 3 audit rule must be ground so the range counts one
// element per row.
func TestFigure3RulesAreGroundAuditSide(t *testing.T) {
	v := Vocabulary()
	al := Figure3AuditPolicy()
	if al.Len() != 6 {
		t.Fatalf("P_AL has %d rules", al.Len())
	}
	if !al.IsGround(v) {
		t.Error("P_AL must be ground (it is an audit-log policy)")
	}
	ps := PolicyStore()
	if ps.Len() != 3 {
		t.Fatalf("P_PS has %d rules", ps.Len())
	}
	if ps.IsGround(v) {
		t.Error("P_PS should be composite (abstract-level rules)")
	}
}

// TestConstantsAgree cross-checks the stated constants against each
// other (the heavy verification lives in internal/core).
func TestConstantsAgree(t *testing.T) {
	if Figure3Coverage != 0.5 || Table1Coverage != 0.3 || Table1PostAdoptionCoverage != 0.8 {
		t.Error("paper constants drifted")
	}
	if Table1PracticeSize != 7 || RefinementSupport != 5 || RefinementDistinctUsers != 3 {
		t.Error("refinement constants drifted")
	}
	r := RefinementPattern()
	if r.Key() != "authorized=nurse&data=referral&purpose=registration" {
		t.Errorf("pattern key = %q", r.Key())
	}
	if !r.IsGround(vocab.Sample()) {
		t.Error("the §5 pattern must be ground")
	}
}
