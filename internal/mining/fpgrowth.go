package mining

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// FP-growth (Han, Pei & Yin, SIGMOD 2000) mines the same frequent
// itemsets as Apriori without candidate generation: transactions are
// compressed into a prefix tree ordered by descending item frequency
// (the FP-tree), and patterns grow by recursing into per-item
// conditional trees. Two properties make it the scale engine here:
//
//   - the tree is built once per epoch from the weighted distinct-
//     transaction table (intern.go), so cost is O(distinct txs ×
//     depth) regardless of raw row count; and
//   - both construction and mining parallelize — one tree per table
//     stripe built concurrently and merged, then a worker pool
//     divides the top-level header ranks, whose conditional search
//     spaces are independent.
//
// "Rank" below is an item id renumbered so rank 0 is the most
// frequent item (ties broken by normalized key for determinism);
// every path in the tree is strictly rank-ascending from the root.

// FPGrowth is the FP-growth mining engine. The zero value is ready to
// use. It satisfies Miner, and (via extractor.go) core.PatternExtractor
// alongside the Apriori-backed Extractor; differential tests pin its
// output byte-identical to Apriori.
type FPGrowth struct {
	// KeepPartial retains frequent itemsets narrower than the full
	// attribute width when extracting refinement patterns, mirroring
	// Extractor.KeepPartial.
	KeepPartial bool
	// Workers bounds the pattern-growth worker pool; <= 0 means
	// GOMAXPROCS.
	Workers int
}

// Mine implements Miner.
func (f FPGrowth) Mine(txs []Transaction, minSupport int) (*Result, error) {
	if minSupport < 1 {
		return nil, errMinSupport(minSupport)
	}
	t := newTxTable(defaultTableShards, false)
	for _, tx := range txs {
		t.foldTx(tx)
	}
	return finishResult(t, fpMine(t, minSupport, f.Workers), len(txs), minSupport), nil
}

// fpNode is one FP-tree node in the arena. Links are arena indices,
// -1 for none; node 0 is the root.
type fpNode struct {
	rank   int32
	count  int
	parent int32
	child  int32 // first child
	sib    int32 // next sibling
	hlink  int32 // next node of the same rank (header chain)
}

type fpTree struct {
	nodes []fpNode
	head  []int32 // per-rank header chain head, -1 if absent
	cnt   []int   // per-rank total weighted count
}

func newFPTree(ranks int) *fpTree {
	t := &fpTree{
		nodes: make([]fpNode, 1, 64),
		head:  make([]int32, ranks),
		cnt:   make([]int, ranks),
	}
	t.nodes[0] = fpNode{rank: -1, parent: -1, child: -1, sib: -1, hlink: -1}
	for i := range t.head {
		t.head[i] = -1
	}
	return t
}

// insert folds one rank-ascending transaction with the given weight.
func (t *fpTree) insert(ranks []int32, weight int) {
	cur := int32(0)
	for _, rk := range ranks {
		t.cnt[rk] += weight
		found := int32(-1)
		for c := t.nodes[cur].child; c >= 0; c = t.nodes[c].sib {
			if t.nodes[c].rank == rk {
				found = c
				break
			}
		}
		if found < 0 {
			found = int32(len(t.nodes))
			t.nodes = append(t.nodes, fpNode{rank: rk, parent: cur, child: -1, sib: t.nodes[cur].child, hlink: -1})
			t.nodes[cur].child = found
		}
		t.nodes[found].count += weight
		cur = found
	}
}

// merge folds another tree built over the same rank space into t by
// recursive structural descent: shared prefixes add counts, divergent
// branches graft.
func (t *fpTree) merge(o *fpTree) {
	for i := range t.cnt {
		t.cnt[i] += o.cnt[i]
	}
	t.mergeChildren(0, o, 0)
}

func (t *fpTree) mergeChildren(dst int32, o *fpTree, src int32) {
	for c := o.nodes[src].child; c >= 0; c = o.nodes[c].sib {
		rk := o.nodes[c].rank
		found := int32(-1)
		for d := t.nodes[dst].child; d >= 0; d = t.nodes[d].sib {
			if t.nodes[d].rank == rk {
				found = d
				break
			}
		}
		if found < 0 {
			found = int32(len(t.nodes))
			t.nodes = append(t.nodes, fpNode{rank: rk, parent: dst, child: -1, sib: t.nodes[dst].child, hlink: -1})
			t.nodes[dst].child = found
		}
		t.nodes[found].count += o.nodes[c].count
		t.mergeChildren(found, o, c)
	}
}

// link threads the header chains after all inserts/merges. Chain
// order does not affect mined supports; building it in one pass keeps
// construction O(nodes).
func (t *fpTree) link() {
	stack := make([]int32, 0, 32)
	stack = append(stack, 0)
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for c := t.nodes[n].child; c >= 0; c = t.nodes[c].sib {
			rk := t.nodes[c].rank
			t.nodes[c].hlink = t.head[rk]
			t.head[rk] = c
			stack = append(stack, c)
		}
	}
}

// conditional builds the conditional FP-tree of rank r: the prefix
// paths of every r-node, reweighted by the r-node counts, with ranks
// that fall below minSupport in the conditional base pruned.
func (t *fpTree) conditional(r int32, minSupport int, condCnt []int) *fpTree {
	for i := range condCnt {
		condCnt[i] = 0
	}
	for n := t.head[r]; n >= 0; n = t.nodes[n].hlink {
		w := t.nodes[n].count
		for p := t.nodes[n].parent; p > 0; p = t.nodes[p].parent {
			condCnt[t.nodes[p].rank] += w
		}
	}
	ct := newFPTree(len(t.head))
	var path []int32
	for n := t.head[r]; n >= 0; n = t.nodes[n].hlink {
		w := t.nodes[n].count
		path = path[:0]
		for p := t.nodes[n].parent; p > 0; p = t.nodes[p].parent {
			if condCnt[t.nodes[p].rank] >= minSupport {
				path = append(path, t.nodes[p].rank)
			}
		}
		if len(path) == 0 {
			continue
		}
		// The upward walk yields ranks deepest-first; inserts expect
		// rank-ascending (root-first) order.
		for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
			path[i], path[j] = path[j], path[i]
		}
		ct.insert(path, w)
	}
	ct.link()
	return ct
}

// fpMine runs FP-growth over a transaction table: frequency ranking,
// concurrent per-stripe tree builds, structural merge, then pattern
// growth with a worker pool over the top-level ranks.
func fpMine(t *txTable, minSupport, workers int) []mined {
	counts := t.counts()
	var freqIDs []int32
	for id, c := range counts {
		if c >= minSupport {
			freqIDs = append(freqIDs, int32(id))
		}
	}
	if len(freqIDs) == 0 {
		return nil
	}
	sortRanks(freqIDs, counts, t.in.keys)
	id2rank := make([]int32, len(counts))
	for i := range id2rank {
		id2rank[i] = -1
	}
	for r, id := range freqIDs {
		id2rank[id] = int32(r)
	}
	nr := len(freqIDs)

	// One tree per table stripe, built concurrently.
	trees := make([]*fpTree, len(t.shards))
	var wg sync.WaitGroup
	for s := range t.shards {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			tree := newFPTree(nr)
			sh := &t.shards[s]
			var ranks []int32
			for row, set := range sh.sets {
				ranks = ranks[:0]
				for _, id := range set {
					if rk := id2rank[id]; rk >= 0 {
						ranks = append(ranks, rk)
					}
				}
				sortIDs(ranks)
				tree.insert(ranks, sh.weight[row])
			}
			trees[s] = tree
		}(s)
	}
	wg.Wait()
	tree := trees[0]
	for _, o := range trees[1:] {
		tree.merge(o)
	}
	tree.link()

	// Pattern growth: the conditional search space under each
	// top-level rank is independent, so a pool divides the ranks and
	// each worker accumulates into its own slot.
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nr {
		workers = nr
	}
	perRank := make([][]mined, nr)
	var cursor int64 = -1
	wg = sync.WaitGroup{}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m := &fpMiner{
				rank2id:    freqIDs,
				minSupport: minSupport,
				condCnt:    make([]int, nr),
			}
			for {
				r := atomic.AddInt64(&cursor, 1)
				if r >= int64(nr) {
					return
				}
				m.out = nil
				m.suffix = m.suffix[:0]
				m.grow(tree, int32(r))
				perRank[r] = m.out
			}
		}()
	}
	wg.Wait()

	var out []mined
	for _, ms := range perRank {
		out = append(out, ms...)
	}
	return out
}

// fpMiner is one pattern-growth worker's state.
type fpMiner struct {
	rank2id    []int32
	minSupport int
	condCnt    []int
	suffix     []int32 // current rank path, mutated along the recursion
	out        []mined
}

// grow emits the itemset suffix∪{r} and recurses into r's conditional
// tree. Every rank reachable in tree is already >= minSupport (the
// full tree contains only frequent ranks; conditional trees prune at
// construction), so cnt[r] is the itemset's exact weighted support.
func (m *fpMiner) grow(tree *fpTree, r int32) {
	m.suffix = append(m.suffix, r)
	ids := make([]int32, len(m.suffix))
	for i, rk := range m.suffix {
		ids[i] = m.rank2id[rk]
	}
	sortIDs(ids)
	m.out = append(m.out, mined{ids: ids, support: tree.cnt[r]})

	ct := tree.conditional(r, m.minSupport, m.condCnt)
	for rk := int32(len(ct.head)) - 1; rk >= 0; rk-- {
		if ct.head[rk] >= 0 {
			m.grow(ct, rk)
		}
	}
	m.suffix = m.suffix[:len(m.suffix)-1]
}

// sortRanks orders frequent ids by descending support, ties broken by
// normalized key so the ranking — and therefore tree shape — is
// deterministic.
func sortRanks(ids []int32, counts []int, keys []string) {
	// Insertion sort keeps this allocation-free; the frequent-item
	// alphabet is small relative to the transaction volume.
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0; j-- {
			a, b := ids[j-1], ids[j]
			if counts[a] > counts[b] || (counts[a] == counts[b] && keys[a] < keys[b]) {
				break
			}
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}
