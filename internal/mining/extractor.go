package mining

import (
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Extractor adapts Apriori to PRIMA's PatternExtractor interface
// (core.Options.Extractor). Each practice entry becomes one
// transaction over the analysis attributes; frequent itemsets that
// span ALL analysis attributes become full patterns (comparable to
// the SQL extractor's output), subject to the distinct-user
// condition. Partial itemsets — the correlations plain SQL misses —
// are available via Correlations.
type Extractor struct {
	// KeepPartial, when set, also returns patterns for frequent
	// itemsets narrower than the full attribute set. Their rules have
	// lower cardinality and therefore never match full-width policy
	// rules; they are surfaced for the privacy officer rather than
	// for automatic adoption.
	KeepPartial bool
}

var _ core.PatternExtractor = Extractor{}

// Extract implements core.PatternExtractor.
func (x Extractor) Extract(practice []audit.Entry, opts core.Options) ([]core.Pattern, error) {
	attrs := opts.Attrs
	if len(attrs) == 0 {
		attrs = core.DefaultAttrs
	}
	minSupport := opts.MinSupport
	if minSupport == 0 {
		minSupport = 5
	}
	minUsers := opts.MinDistinctUsers
	if minUsers == 0 {
		minUsers = 2
	}

	txs := make([]Transaction, len(practice))
	for i, e := range practice {
		items := make([]Item, 0, len(attrs))
		for _, a := range attrs {
			v, err := attrValue(e, a)
			if err != nil {
				return nil, err
			}
			items = append(items, Item{Attr: a, Value: v})
		}
		txs[i] = NewItemset(items...)
	}
	res, err := Apriori(txs, minSupport)
	if err != nil {
		return nil, err
	}

	var patterns []core.Pattern
	for _, f := range res.Frequent {
		if !x.KeepPartial && len(f.Items) != len(attrs) {
			continue
		}
		// Evidence pass: distinct users and time window over the
		// supporting entries.
		users := make(map[string]bool)
		var first, last time.Time
		for i, tx := range txs {
			if !tx.Contains(f.Items) {
				continue
			}
			e := practice[i]
			users[vocab.Norm(e.User)] = true
			if first.IsZero() || e.Time.Before(first) {
				first = e.Time
			}
			if e.Time.After(last) {
				last = e.Time
			}
		}
		if len(users) < minUsers {
			continue
		}
		terms := make([]policy.Term, len(f.Items))
		for i, it := range f.Items {
			terms[i] = policy.T(it.Attr, it.Value)
		}
		rule, err := policy.NewRule(terms...)
		if err != nil {
			return nil, err
		}
		patterns = append(patterns, core.Pattern{
			Rule:          rule,
			Support:       f.Support,
			DistinctUsers: len(users),
			FirstSeen:     first,
			LastSeen:      last,
		})
	}
	sort.Slice(patterns, func(i, j int) bool {
		if patterns[i].Support != patterns[j].Support {
			return patterns[i].Support > patterns[j].Support
		}
		return patterns[i].Rule.Key() < patterns[j].Rule.Key()
	})
	return patterns, nil
}

// Correlations mines the practice entries and returns only the
// *partial* frequent itemsets (narrower than the full attribute set):
// the attribute-pair correlations the paper's §5 says simple SQL
// queries do not discover.
func Correlations(practice []audit.Entry, attrs []string, minSupport int) ([]Frequent, error) {
	if len(attrs) == 0 {
		attrs = core.DefaultAttrs
	}
	txs := make([]Transaction, len(practice))
	for i, e := range practice {
		items := make([]Item, 0, len(attrs))
		for _, a := range attrs {
			v, err := attrValue(e, a)
			if err != nil {
				return nil, err
			}
			items = append(items, Item{Attr: a, Value: v})
		}
		txs[i] = NewItemset(items...)
	}
	res, err := Apriori(txs, minSupport)
	if err != nil {
		return nil, err
	}
	var out []Frequent
	for _, f := range res.Frequent {
		if len(f.Items) >= 2 && len(f.Items) < len(attrs) {
			out = append(out, f)
		}
	}
	return out, nil
}

func attrValue(e audit.Entry, attr string) (string, error) {
	switch vocab.Norm(attr) {
	case "data":
		return e.Data, nil
	case "purpose":
		return e.Purpose, nil
	case "authorized":
		return e.Authorized, nil
	case "user":
		return e.User, nil
	case "op":
		if e.Op == audit.Allow {
			return "1", nil
		}
		return "0", nil
	case "status":
		if e.Status == audit.Regular {
			return "1", nil
		}
		return "0", nil
	default:
		return "", errBadAttr(attr)
	}
}

type errBadAttr string

func (e errBadAttr) Error() string { return "mining: invalid analysis attribute " + string(e) }
