package core

import (
	"fmt"
	"sort"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// Generalization addresses the paper's first stated benefit of
// refinement — "improving the design of the policies" (§1) — from the
// other direction: refinement adopts *ground* rules one at a time, so
// after a few rounds the policy store accumulates sibling rules that
// a policy author would have written as one composite rule. Generalize
// rewrites the store into an equivalent, smaller policy:
//
//   - lift: if a rule's value can be replaced by its vocabulary
//     parent without enlarging the policy's range (every ground rule
//     the lift adds is already in the range), do so;
//   - prune: drop rules whose entire range is contributed by the
//     remaining rules.
//
// Both steps preserve Range(P) exactly (verified by the property
// tests), so coverage of and by the policy is unchanged.

// GeneralizeResult reports what a generalization pass did.
type GeneralizeResult struct {
	Policy      *policy.Policy // the rewritten policy (new instance)
	Lifted      int            // value-to-parent replacements applied
	Removed     int            // redundant rules dropped
	RulesBefore int
	RulesAfter  int
	RangeSize   int // unchanged range cardinality, as a sanity anchor
}

// Generalize rewrites ps into an equivalent minimal-ish policy over v.
// The input policy is not modified.
func Generalize(ps *policy.Policy, v *vocab.Vocabulary) (*GeneralizeResult, error) {
	target, err := policy.NewRange(ps, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", ps.Name, err)
	}
	res := &GeneralizeResult{RulesBefore: ps.Len(), RangeSize: target.Len()}

	work := append([]policy.Rule(nil), ps.Rules()...)

	// Lift values to parents while the range stays within target.
	changed := true
	for changed {
		changed = false
		for i, r := range work {
			lifted, ok, err := liftOnce(r, v, target)
			if err != nil {
				return nil, err
			}
			if ok {
				work[i] = lifted
				res.Lifted++
				changed = true
			}
		}
	}

	// Deduplicate after lifting (sibling rules often lift to the same
	// composite rule).
	dedup := policy.New(ps.Name)
	for _, r := range work {
		dedup.Add(r)
	}
	work = append(work[:0], dedup.Rules()...)

	// Prune rules whose range is covered by the others. Consider
	// bigger contributors last so specific leftovers are dropped in
	// favour of the lifted composites.
	sort.SliceStable(work, func(i, j int) bool {
		return rangeSize(work[i], v) > rangeSize(work[j], v)
	})
	kept := policy.New(ps.Name)
	for i, r := range work {
		others := policy.New("others")
		for _, k := range kept.Rules() {
			others.Add(k)
		}
		for _, later := range work[i+1:] {
			others.Add(later)
		}
		orange, err := policy.NewRange(others, v, 0)
		if err != nil {
			return nil, err
		}
		grounds, truncated := r.Groundings(v, policy.DefaultRangeLimit)
		if truncated {
			return nil, fmt.Errorf("core: rule %s expands beyond the range limit", r)
		}
		redundant := true
		for _, g := range grounds {
			if !orange.Contains(g) {
				redundant = false
				break
			}
		}
		if redundant {
			res.Removed++
			continue
		}
		kept.Add(r)
	}

	// Sanity: the rewritten policy has the identical range.
	after, err := policy.NewRange(kept, v, 0)
	if err != nil {
		return nil, err
	}
	if len(after.Keys()) != len(target.Keys()) {
		return nil, fmt.Errorf("core: generalization changed the range (%d -> %d ground rules); this is a bug",
			target.Len(), after.Len())
	}
	for _, k := range target.Rules() {
		if !after.Contains(k) {
			return nil, fmt.Errorf("core: generalization lost ground rule %s; this is a bug", k)
		}
	}

	res.Policy = kept
	res.RulesAfter = kept.Len()
	return res, nil
}

// liftOnce tries to replace one term's value with its parent such
// that the lifted rule's range stays inside target. It returns the
// first applicable lift (deterministic order).
func liftOnce(r policy.Rule, v *vocab.Vocabulary, target *policy.Range) (policy.Rule, bool, error) {
	for _, t := range r.Terms() {
		h := v.Hierarchy(t.Attr)
		if h == nil {
			continue
		}
		node := h.Node(t.Value)
		if node == nil || node.Parent() == nil {
			continue
		}
		parent := node.Parent().Value()
		terms := make([]policy.Term, 0, r.Len())
		for _, u := range r.Terms() {
			if u == t {
				terms = append(terms, policy.T(u.Attr, parent))
			} else {
				terms = append(terms, u)
			}
		}
		lifted, err := policy.NewRule(terms...)
		if err != nil {
			return policy.Rule{}, false, err
		}
		grounds, truncated := lifted.Groundings(v, policy.DefaultRangeLimit)
		if truncated {
			continue // too wide to verify; leave as is
		}
		within := true
		for _, g := range grounds {
			if !target.Contains(g) {
				within = false
				break
			}
		}
		if within {
			return lifted, true, nil
		}
	}
	return policy.Rule{}, false, nil
}

func rangeSize(r policy.Rule, v *vocab.Vocabulary) int {
	n := 1
	for _, t := range r.Terms() {
		n *= len(v.GroundSet(t.Attr, t.Value))
	}
	return n
}
