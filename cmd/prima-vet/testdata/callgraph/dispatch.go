// Package callgraph is a driver fixture (no want annotations): the
// call-graph test asserts CHA resolution of the interface dispatch
// below and the synthetic encloser edge for the function literal.
package callgraph

type Speaker interface{ Speak() string }

type Dog struct{}

func (Dog) Speak() string { return "woof" }

type Cat struct{}

func (*Cat) Speak() string { return "meow" }

// Dispatch calls through the interface: CHA must resolve the call to
// both implementations.
func Dispatch(s Speaker) string { return s.Speak() }

// Direct calls one implementation statically.
func Direct() string { return Dog{}.Speak() }

// UseLit encloses a function literal that calls Dispatch.
func UseLit() func() string {
	f := func() string { return Dispatch(Dog{}) }
	return f
}
