package main

import (
	"fmt"
	"go/ast"
	"testing"
)

// TestFixpointTermination builds the CFG of every loop-heavy body in
// the cfgloop fixture (nested loops, labeled break/continue, goto,
// switch-in-loop) and asserts the dataflow engine converges within
// its defensive iteration bound with facts propagated to every
// reachable block.
func TestFixpointTermination(t *testing.T) {
	_, pkg := loadFixture(t, "cfgloop")
	for _, fd := range funcDecls(pkg) {
		fd := fd
		t.Run(fd.Name.Name, func(t *testing.T) {
			cfg := BuildCFG(fd.Body)
			if cfg.Entry == nil || len(cfg.Blocks) == 0 {
				t.Fatal("empty CFG")
			}
			// Gen-only transfer: each block adds one fact. Monotone,
			// so the fixpoint must converge; the fact universe is one
			// fact per block plus the seed.
			transfer := func(b *Block, in factSet) factSet {
				out := in.clone()
				out[fmt.Sprintf("b%d", b.Index)] = true
				return out
			}
			res := cfg.Fixpoint(factSet{"seed": true}, transfer)

			n := len(cfg.Blocks)
			bound := (n + 1) * (n + 1 + 2) * 4
			if res.Iterations <= 0 || res.Iterations > bound {
				t.Errorf("fixpoint took %d iterations, want within (0, %d]", res.Iterations, bound)
			}

			// The seed must reach every block reachable from entry.
			reachable := map[int]bool{cfg.Entry.Index: true}
			work := []*Block{cfg.Entry}
			for len(work) > 0 {
				b := work[len(work)-1]
				work = work[:len(work)-1]
				for _, s := range b.Succs {
					if !reachable[s.Index] {
						reachable[s.Index] = true
						work = append(work, s)
					}
				}
			}
			for idx := range reachable {
				if !res.In[idx]["seed"] {
					t.Errorf("block %d reachable from entry but seed fact missing", idx)
				}
			}

			// Determinism: a second run must produce identical in-sets.
			res2 := cfg.Fixpoint(factSet{"seed": true}, transfer)
			for i := range res.In {
				if !res.In[i].equal(res2.In[i]) {
					t.Errorf("block %d: fixpoint not deterministic", i)
				}
			}
		})
	}
}

// TestCFGLoopEdges sanity-checks that loops produce back edges: in
// every fixture body at least one block has a successor with a
// smaller or equal index (the loop head).
func TestCFGLoopEdges(t *testing.T) {
	_, pkg := loadFixture(t, "cfgloop")
	for _, fd := range funcDecls(pkg) {
		fd := fd
		t.Run(fd.Name.Name, func(t *testing.T) {
			cfg := BuildCFG(fd.Body)
			back := false
			for _, b := range cfg.Blocks {
				for _, s := range b.Succs {
					if s.Index <= b.Index {
						back = true
					}
				}
			}
			if !back {
				t.Error("loop-heavy body produced no back edges")
			}
			// Synthetic condition wrappers must still be statements of
			// some block (no dangling expressions).
			for _, b := range cfg.Blocks {
				for _, s := range b.Stmts {
					if s == nil {
						t.Fatal("nil statement in block")
					}
					if es, ok := s.(*ast.ExprStmt); ok && es.X == nil {
						t.Fatal("empty synthetic condition")
					}
				}
			}
		})
	}
}
