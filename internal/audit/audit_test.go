package audit

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"
)

func entry(t time.Time, user, data, purpose, role string, st Status) Entry {
	return Entry{Time: t, Op: Allow, User: user, Data: data, Purpose: purpose, Authorized: role, Status: st}
}

var t0 = time.Date(2007, 3, 1, 8, 0, 0, 0, time.UTC)

func TestEntryValidate(t *testing.T) {
	good := entry(t0, "john", "referral", "treatment", "nurse", Regular)
	if err := good.Validate(); err != nil {
		t.Fatalf("valid entry rejected: %v", err)
	}
	cases := []struct {
		name string
		mod  func(Entry) Entry
	}{
		{"zero time", func(e Entry) Entry { e.Time = time.Time{}; return e }},
		{"no user", func(e Entry) Entry { e.User = "  "; return e }},
		{"no data", func(e Entry) Entry { e.Data = ""; return e }},
		{"no purpose", func(e Entry) Entry { e.Purpose = ""; return e }},
		{"no role", func(e Entry) Entry { e.Authorized = ""; return e }},
		{"bad op", func(e Entry) Entry { e.Op = 7; return e }},
		{"bad status", func(e Entry) Entry { e.Status = -1; return e }},
	}
	for _, c := range cases {
		bad := c.mod(good)
		if err := bad.Validate(); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func TestEntryRuleProjection(t *testing.T) {
	e := entry(t0, "john", "Referral", "Treatment", "Nurse", Regular)
	r := e.Rule()
	if r.Len() != 3 {
		t.Fatalf("rule has %d terms", r.Len())
	}
	if r.Key() != "authorized=nurse&data=referral&purpose=treatment" {
		t.Errorf("Key = %q", r.Key())
	}
}

func TestOpStatusStrings(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" {
		t.Error("op strings wrong")
	}
	if Regular.String() != "regular" || Exception.String() != "exception" {
		t.Error("status strings wrong")
	}
}

func TestLogAppendAndViews(t *testing.T) {
	l := NewLog("site-a")
	e1 := entry(t0, "a", "referral", "treatment", "nurse", Regular)
	e2 := entry(t0.Add(time.Hour), "b", "psychiatry", "treatment", "nurse", Exception)
	if err := l.Append(e1, e2); err != nil {
		t.Fatal(err)
	}
	if l.Len() != 2 {
		t.Fatalf("Len = %d", l.Len())
	}
	snap := l.Snapshot()
	if snap[0].Site != "site-a" || snap[1].Site != "site-a" {
		t.Error("site not stamped")
	}
	if got := l.Exceptions(); len(got) != 1 || got[0].User != "b" {
		t.Errorf("Exceptions = %v", got)
	}
	if got := l.Since(t0.Add(30 * time.Minute)); len(got) != 1 {
		t.Errorf("Since = %v", got)
	}
	// Appending an invalid entry must not mutate the log.
	if err := l.Append(Entry{}); err == nil {
		t.Fatal("invalid entry accepted")
	}
	if l.Len() != 2 {
		t.Error("failed append mutated log")
	}
	l.Reset()
	if l.Len() != 0 {
		t.Error("reset failed")
	}
}

func TestLogPreservesExplicitSite(t *testing.T) {
	l := NewLog("site-a")
	e := entry(t0, "a", "d", "p", "r", Regular)
	e.Site = "site-b"
	if err := l.Append(e); err != nil {
		t.Fatal(err)
	}
	if got := l.Snapshot()[0].Site; got != "site-b" {
		t.Errorf("site overwritten: %q", got)
	}
}

func TestSnapshotIsCopy(t *testing.T) {
	l := NewLog("")
	if err := l.Append(entry(t0, "a", "d", "p", "r", Regular)); err != nil {
		t.Fatal(err)
	}
	snap := l.Snapshot()
	snap[0].User = "mutated"
	if l.Snapshot()[0].User != "a" {
		t.Error("snapshot shares storage with log")
	}
}

func TestToPolicyDeduplicates(t *testing.T) {
	entries := []Entry{
		entry(t0, "a", "referral", "registration", "nurse", Exception),
		entry(t0.Add(time.Hour), "b", "Referral", "Registration", "Nurse", Exception),
		entry(t0.Add(2*time.Hour), "c", "address", "billing", "clerk", Regular),
	}
	p := ToPolicy("AL", entries)
	if p.Len() != 2 {
		t.Errorf("ToPolicy kept %d rules, want 2", p.Len())
	}
}

func TestSummarize(t *testing.T) {
	entries := []Entry{
		entry(t0, "a", "d", "p", "r", Regular),
		entry(t0.Add(time.Hour), "b", "d", "p", "r", Exception),
		{Time: t0.Add(2 * time.Hour), Op: Deny, User: "a", Data: "d", Purpose: "p", Authorized: "r", Status: Regular},
	}
	s := Summarize(entries)
	if s.Total != 3 || s.Allowed != 2 || s.Denied != 1 || s.Exceptions != 1 || s.Regular != 2 {
		t.Errorf("Stats = %+v", s)
	}
	if s.Users != 2 {
		t.Errorf("Users = %d", s.Users)
	}
	if !s.First.Equal(t0) || !s.Last.Equal(t0.Add(2*time.Hour)) {
		t.Errorf("First/Last = %v/%v", s.First, s.Last)
	}
	if z := Summarize(nil); z.Total != 0 || !z.First.IsZero() {
		t.Errorf("empty Summarize = %+v", z)
	}
}

func TestSortByTimeStable(t *testing.T) {
	entries := []Entry{
		entry(t0.Add(time.Hour), "later", "d", "p", "r", Regular),
		entry(t0, "first-same", "d", "p", "r", Regular),
		entry(t0, "second-same", "d", "p", "r", Regular),
	}
	SortByTime(entries)
	if entries[0].User != "first-same" || entries[1].User != "second-same" || entries[2].User != "later" {
		t.Errorf("bad order: %v", entries)
	}
}

func TestEntryString(t *testing.T) {
	e := entry(t0, "john", "referral", "treatment", "nurse", Exception)
	s := e.String()
	for _, want := range []string{"john", "referral", "treatment", "nurse", "exception", "allow"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestSinkStreamsEntries(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog("ward")
	l.SetSink(&buf, nil)
	e1 := entry(t0, "a", "referral", "treatment", "nurse", Regular)
	e2 := entry(t0.Add(time.Hour), "b", "psychiatry", "treatment", "nurse", Exception)
	if err := l.Append(e1); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(e2); err != nil {
		t.Fatal(err)
	}
	// The sink is asynchronous: join the flusher before reading.
	l.CloseSink()
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 || got[0].User != "a" || got[1].User != "b" {
		t.Fatalf("sink contents: %v", got)
	}
	if got[0].Site != "ward" {
		t.Errorf("sink entry missing site stamp: %+v", got[0])
	}
}

func TestSinkFailureDoesNotBlockAppend(t *testing.T) {
	var failures int
	l := NewLog("ward")
	l.SetSink(failWriter{}, func(error) { failures++ })
	if err := l.Append(entry(t0, "a", "d", "p", "r", Regular)); err != nil {
		t.Fatalf("append failed on sink error: %v", err)
	}
	l.CloseSink() // joins the flusher; the write error has been reported
	if l.Len() != 1 || failures != 1 {
		t.Errorf("len=%d failures=%d", l.Len(), failures)
	}
	// Without an error callback, failures are silent but appends work.
	l2 := NewLog("ward")
	l2.SetSink(failWriter{}, nil)
	if err := l2.Append(entry(t0, "a", "d", "p", "r", Regular)); err != nil || l2.Len() != 1 {
		t.Errorf("silent sink failure broke append: %v", err)
	}
	l2.CloseSink()
}

type failWriter struct{}

func (failWriter) Write([]byte) (int, error) { return 0, fmt.Errorf("disk full") }
