package audit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// genEntries builds n deterministic entries spread over users, data
// categories, purposes and instants so they scatter across shards.
func genEntries(n int) []Entry {
	rng := rand.New(rand.NewSource(7))
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	data := []string{"referral", "psychiatry", "lab results", "billing"}
	purposes := []string{"treatment", "research", "billing"}
	roles := []string{"nurse", "physician", "clerk"}
	out := make([]Entry, n)
	for i := range out {
		st := Regular
		op := Allow
		switch rng.Intn(4) {
		case 0:
			st = Exception
		case 1:
			op = Deny
		}
		out[i] = Entry{
			Time:       t0.Add(time.Duration(rng.Intn(600)) * time.Minute),
			Op:         op,
			User:       users[rng.Intn(len(users))],
			Data:       data[rng.Intn(len(data))],
			Purpose:    purposes[rng.Intn(len(purposes))],
			Authorized: roles[rng.Intn(len(roles))],
			Status:     st,
		}
	}
	return out
}

// TestShardedSnapshotMatchesSequentialLog is the determinism check of
// the sharded store: for the same sequential input, a many-shard log
// and a single-shard log produce byte-identical Snapshot, Exceptions,
// SnapshotByTime, Groups and Summary views.
func TestShardedSnapshotMatchesSequentialLog(t *testing.T) {
	entries := genEntries(500)
	sharded := NewLogShards("s", 16)
	sequential := NewLogShards("s", 1)
	for _, e := range entries {
		if err := sharded.Append(e); err != nil {
			t.Fatal(err)
		}
		if err := sequential.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(sharded.Snapshot(), sequential.Snapshot()) {
		t.Fatal("sharded Snapshot diverges from sequential log")
	}
	if !reflect.DeepEqual(sharded.Exceptions(), sequential.Exceptions()) {
		t.Fatal("sharded Exceptions diverges from sequential log")
	}
	if !reflect.DeepEqual(sharded.SnapshotByTime(), sequential.SnapshotByTime()) {
		t.Fatal("sharded SnapshotByTime diverges from sequential log")
	}
	if !reflect.DeepEqual(sharded.Groups(), sequential.Groups()) {
		t.Fatal("sharded Groups diverges from sequential log")
	}
	if sharded.Summary() != sequential.Summary() {
		t.Fatal("sharded Summary diverges from sequential log")
	}
}

// TestSnapshotByTimeMatchesSortByTime pins the SnapshotByTime
// contract federation depends on: identical to SortByTime over a
// sequence-ordered Snapshot, including same-instant tie-breaks.
func TestSnapshotByTimeMatchesSortByTime(t *testing.T) {
	l := NewLog("s")
	entries := genEntries(800)
	// Duplicate some instants exactly to exercise the tie-break.
	for i := range entries {
		entries[i].Time = t0.Add(time.Duration(i%50) * time.Minute)
	}
	if err := l.Append(entries...); err != nil {
		t.Fatal(err)
	}
	want := l.Snapshot()
	SortByTime(want)
	if got := l.SnapshotByTime(); !reflect.DeepEqual(got, want) {
		t.Fatal("SnapshotByTime != SortByTime(Snapshot())")
	}
}

// TestIndexMatchesRescan checks the index-consistency invariant: the
// merged Groups/Summary views equal a from-scratch recomputation over
// the snapshot, including after retention trims part of the log.
func TestIndexMatchesRescan(t *testing.T) {
	l := NewLog("s")
	if err := l.Append(genEntries(600)...); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		snap := l.Snapshot()
		if got, want := l.Summary(), Summarize(snap); got != want {
			t.Fatalf("%s: Summary() = %+v, rescan = %+v", stage, got, want)
		}
		want := groupsByRescan(snap)
		if got := l.Groups(); !reflect.DeepEqual(got, want) {
			t.Fatalf("%s: Groups() diverges from rescan:\n got %+v\nwant %+v", stage, got, want)
		}
	}
	check("after append")
	l.Expire(t0.Add(300*time.Minute), time.Time{})
	check("after expire")
	l.Rotate(t0.Add(450 * time.Minute))
	check("after rotate")
	l.Reset()
	check("after reset")
}

// groupsByRescan recomputes the Group view naively from a snapshot.
func groupsByRescan(entries []Entry) []Group {
	fresh := NewLogShards("", 1)
	for _, e := range entries {
		fresh.bulkLoad([]Entry{e})
	}
	return fresh.Groups()
}

// TestDeltaCursor drives the O(delta) read path: successive Deltas
// partition the appended entries in order, and structural changes
// force a resync.
func TestDeltaCursor(t *testing.T) {
	l := NewLog("s")
	entries := genEntries(300)
	var cur Cursor
	var seen []Entry

	delta, cur, resync := l.Delta(cur)
	if !resync || len(delta) != 0 {
		t.Fatalf("zero cursor: resync=%v len=%d", resync, len(delta))
	}
	for i := 0; i < len(entries); i += 100 {
		if err := l.Append(entries[i : i+100]...); err != nil {
			t.Fatal(err)
		}
		delta, cur, resync = l.Delta(cur)
		if resync {
			t.Fatal("unexpected resync on pure appends")
		}
		if len(delta) != 100 {
			t.Fatalf("delta len = %d, want 100", len(delta))
		}
		seen = append(seen, delta...)
	}
	if !reflect.DeepEqual(seen, l.Snapshot()) {
		t.Fatal("concatenated deltas != snapshot")
	}

	// A structural change invalidates the cursor.
	l.Expire(t0.Add(300*time.Minute), time.Time{})
	delta, cur, resync = l.Delta(cur)
	if !resync {
		t.Fatal("expected resync after Expire")
	}
	if !reflect.DeepEqual(delta, l.Snapshot()) {
		t.Fatal("resync delta should restart from the full log")
	}
	if _, _, again := l.Delta(cur); again {
		t.Fatal("cursor should be fresh after resync")
	}
}

// TestConcurrentAppendSnapshotExceptions hammers the striped log from
// appenders and readers simultaneously; run under -race this is the
// shard-concurrency test the pipeline requires. Readers must always
// observe a sequence-ordered prefix-consistent view.
func TestConcurrentAppendSnapshotExceptions(t *testing.T) {
	l := NewLog("s")
	const writers = 8
	const perWriter = 200
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := Entry{
					Time:       t0.Add(time.Duration(i) * time.Second),
					Op:         Allow,
					User:       fmt.Sprintf("user%d", w),
					Data:       "referral",
					Purpose:    "treatment",
					Authorized: "nurse",
					Status:     Status(i % 2),
				}
				if err := l.Append(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}

	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				snap := l.Snapshot()
				for i := 1; i < len(snap); i++ {
					_ = snap[i]
				}
				_ = l.Exceptions()
				_ = l.Groups()
				_ = l.Summary()
			}
		}()
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := l.Len(); got != writers*perWriter {
		t.Fatalf("len = %d, want %d", got, writers*perWriter)
	}
	sum := l.Summary()
	if sum.Total != writers*perWriter || sum.Users != writers {
		t.Fatalf("summary = %+v", sum)
	}
	if got := len(l.Exceptions()); got != writers*perWriter/2 {
		t.Fatalf("exceptions = %d, want %d", got, writers*perWriter/2)
	}
}

// TestSinkFlushOnClose verifies the flusher drains everything on
// CloseSink even when no size/interval trigger fired.
func TestSinkFlushOnClose(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog("ward")
	l.SetSinkOptions(&buf, nil, SinkOptions{BatchSize: 1 << 20, Interval: -1})
	entries := genEntries(57)
	if err := l.Append(entries...); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		// Nothing should have been written yet: batch trigger is huge
		// and the timer is disabled. (Reading buf here is safe only
		// because the flusher cannot have flushed.)
		t.Log("early flush observed; continuing")
	}
	l.CloseSink()
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(entries) {
		t.Fatalf("sink drained %d entries, want %d", len(got), len(entries))
	}
	// Flush ordering: the durable stream is in append (sequence) order.
	if !reflect.DeepEqual(got, l.Snapshot()) {
		t.Fatal("sink stream order != append order")
	}
	// CloseSink is idempotent and detaches.
	l.CloseSink()
	if err := l.Append(entries[0]); err != nil {
		t.Fatal(err)
	}
}

// TestAppendJSONLineMatchesStdlib pins the flusher's reflection-free
// encoder to the stdlib json.Encoder byte for byte, across the plain
// fast path, the omitempty fields, and the escaping fallback.
func TestAppendJSONLineMatchesStdlib(t *testing.T) {
	cases := genEntries(20)
	cases = append(cases,
		Entry{Time: t0, Op: Allow, User: `o"hara`, Data: "a\\b", Purpose: "p", Authorized: "r", Status: Regular},
		Entry{Time: t0, Op: Deny, User: "x<y>&z", Data: "d", Purpose: "p", Authorized: "r", Status: Exception},
		Entry{Time: t0, Op: Allow, User: "søster", Data: "journal\tnotat", Purpose: "p", Authorized: "r", Status: Regular},
		Entry{Time: t0.Add(123456789 * time.Nanosecond), Op: Allow, User: "u", Data: "d", Purpose: "p",
			Authorized: "r", Status: Regular, Site: "oslo", Reason: "on-call cover"},
	)
	var want bytes.Buffer
	enc := json.NewEncoder(&want)
	var got []byte
	for i := range cases {
		if err := enc.Encode(cases[i]); err != nil {
			t.Fatal(err)
		}
		var err error
		if got, err = appendJSONLine(got, &cases[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(got, want.Bytes()) {
		t.Fatalf("encoder output diverges:\n got %q\nwant %q", got, want.Bytes())
	}
}

// TestSinkFlushBarrier verifies Flush waits for everything appended
// before it, without closing the sink.
func TestSinkFlushBarrier(t *testing.T) {
	var buf bytes.Buffer
	l := NewLog("ward")
	l.SetSinkOptions(&buf, nil, SinkOptions{BatchSize: 1 << 20, Interval: -1})
	if err := l.Append(genEntries(10)...); err != nil {
		t.Fatal(err)
	}
	l.Flush()
	if got, err := ReadJSONL(bytes.NewReader(buf.Bytes())); err != nil || len(got) != 10 {
		t.Fatalf("after Flush: %d entries, err %v", len(got), err)
	}
	l.CloseSink()
}

// TestSinkConcurrentAppendOrdered runs concurrent appenders against a
// sink and checks the durable stream is exactly the sequence order —
// the flush-ordering invariant under contention (run with -race).
func TestSinkConcurrentAppendOrdered(t *testing.T) {
	var mu sync.Mutex
	var buf bytes.Buffer
	w := writerFunc(func(p []byte) (int, error) {
		mu.Lock()
		defer mu.Unlock()
		return buf.Write(p)
	})
	l := NewLog("ward")
	l.SetSinkOptions(w, nil, SinkOptions{BatchSize: 8, Interval: time.Millisecond})
	const writers = 6
	const perWriter = 150
	var wg sync.WaitGroup
	for wi := 0; wi < writers; wi++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				e := Entry{
					Time: t0, Op: Allow, Status: Regular,
					User: fmt.Sprintf("w%d-%d", wi, i),
					Data: "referral", Purpose: "treatment", Authorized: "nurse",
				}
				if err := l.Append(e); err != nil {
					t.Error(err)
					return
				}
			}
		}(wi)
	}
	wg.Wait()
	l.CloseSink()
	mu.Lock()
	got, err := ReadJSONL(bytes.NewReader(buf.Bytes()))
	mu.Unlock()
	if err != nil {
		t.Fatal(err)
	}
	if want := l.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("durable stream (%d entries) != append order (%d entries)", len(got), len(want))
	}
}

// TestSinkBackpressureDrop exercises the DropOnFull policy: a stalled
// writer with a tiny queue must drop (and report) rather than block.
func TestSinkBackpressureDrop(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	var written atomic.Int64
	stall := writerFunc(func(p []byte) (int, error) {
		<-release
		written.Add(int64(bytes.Count(p, []byte("\n"))))
		return len(p), nil
	})
	errs := make(chan error, 64)
	l := NewLog("ward")
	l.SetSinkOptions(stall, func(err error) { errs <- err }, SinkOptions{
		BatchSize: 1, Interval: -1, Queue: 2, DropOnFull: true,
	})
	defer once.Do(func() { close(release) })
	for i := 0; i < 32; i++ {
		if err := l.Append(entry(t0, fmt.Sprintf("u%d", i), "d", "p", "r", Regular)); err != nil {
			t.Fatal(err)
		}
	}
	if l.Len() != 32 {
		t.Fatalf("in-memory appends must not drop: len=%d", l.Len())
	}
	if l.SinkDropped() == 0 {
		t.Fatal("expected drops under a stalled writer with DropOnFull")
	}
	select {
	case err := <-errs:
		if err != ErrSinkOverflow {
			t.Fatalf("err = %v, want ErrSinkOverflow", err)
		}
	default:
		t.Fatal("expected ErrSinkOverflow on the error callback")
	}
	dropped := l.SinkDropped()
	once.Do(func() { close(release) })
	l.CloseSink()
	// Conservation: every appended entry was either written by the
	// sink or counted as dropped — none vanish silently.
	if got := written.Load() + int64(dropped); got != 32 {
		t.Fatalf("written %d + dropped %d != appended 32", written.Load(), dropped)
	}
}

// TestSetSinkReplacesAndDrains: swapping sinks flushes the old one.
func TestSetSinkReplacesAndDrains(t *testing.T) {
	var first, second bytes.Buffer
	l := NewLog("ward")
	l.SetSinkOptions(&first, nil, SinkOptions{BatchSize: 1 << 20, Interval: -1})
	if err := l.Append(genEntries(5)...); err != nil {
		t.Fatal(err)
	}
	l.SetSinkOptions(&second, nil, SinkOptions{BatchSize: 1 << 20, Interval: -1})
	if got, err := ReadJSONL(&first); err != nil || len(got) != 5 {
		t.Fatalf("old sink drained %d entries, err %v", len(got), err)
	}
	if err := l.Append(genEntries(3)...); err != nil {
		t.Fatal(err)
	}
	l.CloseSink()
	if got, err := ReadJSONL(&second); err != nil || len(got) != 3 {
		t.Fatalf("new sink drained %d entries, err %v", len(got), err)
	}
}

type writerFunc func([]byte) (int, error)

func (f writerFunc) Write(p []byte) (int, error) { return f(p) }

var _ io.Writer = writerFunc(nil)
