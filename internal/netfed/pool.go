package netfed

import (
	"errors"
	"net"
	"sync"
)

// framePool recycles encoded-frame buffers: the streamer takes one per
// batch, holds it until the ack (it doubles as the retransmit copy),
// then returns it. Oversized buffers are dropped so one giant batch
// cannot pin memory for the pool's lifetime.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 64<<10)
		return &b
	},
}

// maxPooledCap is the largest buffer the pool retains.
const maxPooledCap = 1 << 20

// getBuf returns an empty pooled buffer.
func getBuf() []byte {
	bp := framePool.Get().(*[]byte)
	b := (*bp)[:0]
	*bp = nil
	framePool.Put(bp)
	return b
}

// putBuf returns a buffer to the pool.
func putBuf(b []byte) {
	if cap(b) == 0 || cap(b) > maxPooledCap {
		return
	}
	b = b[:0]
	framePool.Put(&b)
}

// ErrPoolFull rejects a connection beyond the consolidator's cap.
var ErrPoolFull = errors.New("netfed: connection pool full")

// errPoolClosed rejects connections after Close.
var errPoolClosed = errors.New("netfed: consolidator closed")

// connPool is the consolidator's connection registry: admission
// control against a cap and close-all on shutdown.
type connPool struct {
	mu     sync.Mutex // lock class netfed.connPool
	conns  map[net.Conn]struct{}
	max    int
	closed bool
}

func newConnPool(max int) *connPool {
	return &connPool{conns: make(map[net.Conn]struct{}), max: max}
}

// add admits a connection, enforcing the cap.
func (p *connPool) add(c net.Conn) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return errPoolClosed
	}
	if len(p.conns) >= p.max {
		return ErrPoolFull
	}
	p.conns[c] = struct{}{}
	return nil
}

// remove drops a connection from the registry.
func (p *connPool) remove(c net.Conn) {
	p.mu.Lock()
	delete(p.conns, c)
	p.mu.Unlock()
}

// len reports the live connection count.
func (p *connPool) len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.conns)
}

// closeAll marks the pool closed and closes every live connection,
// unblocking their handler goroutines. Closing under the mutex is
// safe: net.Conn.Close never blocks on the handler, and handlers
// that race remove() just wait for the map update.
func (p *connPool) closeAll() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.closed = true
	for c := range p.conns {
		c.Close()
	}
}
