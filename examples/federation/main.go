// Federation: PRIMA's Audit Management component (paper §4.2). Three
// sites of one healthcare organization keep separate audit logs, with
// partial replication and one clock-skew conflict. The federation
// builds the consistent consolidated view, and refinement over the
// consolidated log discovers a practice no single site's log could
// support on its own (the distinct users are spread across sites).
package main

import (
	"fmt"
	"log"
	"time"

	prima "repro"
	"repro/internal/audit"
	"repro/internal/report"
	"repro/internal/scenario"
)

func entry(at time.Time, user, data, purpose, role string, status audit.Status) prima.Entry {
	return prima.Entry{
		Time: at, Op: audit.Allow, User: user,
		Data: data, Purpose: purpose, Authorized: role, Status: status,
	}
}

func main() {
	base := time.Date(2007, 4, 2, 9, 0, 0, 0, time.UTC)

	ward := prima.NewLog("ward")
	icu := prima.NewLog("icu")
	lab := prima.NewLog("lab")

	// Each site sees a slice of the same informal practice: nurses
	// registering patients from referral letters.
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(ward.Append(
		entry(base, "mark", "referral", "registration", "nurse", audit.Exception),
		entry(base.Add(2*time.Hour), "mark", "referral", "registration", "nurse", audit.Exception),
		entry(base.Add(3*time.Hour), "jane", "prescription", "treatment", "nurse", audit.Regular),
	))
	must(icu.Append(
		entry(base.Add(time.Hour), "tim", "referral", "registration", "nurse", audit.Exception),
		entry(base.Add(4*time.Hour), "tim", "referral", "registration", "nurse", audit.Exception),
	))
	must(lab.Append(
		entry(base.Add(5*time.Hour), "bob", "referral", "registration", "nurse", audit.Exception),
	))

	// Replication: the ward's first entry was also replicated to the
	// ICU log (same identity → deduplicated).
	rep := entry(base, "mark", "referral", "registration", "nurse", audit.Exception)
	rep.Site = "ward"
	must(icu.Append(rep))

	// A logging fault: the lab recorded the same instant/actor/object
	// with a different outcome (conflict to report, both kept).
	bad := entry(base.Add(time.Hour), "tim", "referral", "registration", "nurse", audit.Regular)
	must(lab.Append(bad))

	fed := prima.NewFederation(ward, icu, lab)
	consolidated, res := fed.ConsolidateLog("hq")
	fmt.Printf("sites: %d, consolidated entries: %d, duplicates removed: %d, conflicts: %d\n",
		fed.Sources(), consolidated.Len(), res.Duplicates, len(res.Conflicts))
	for _, c := range res.Conflicts {
		// Conflicts embed whole audit entries; print them redacted.
		fmt.Printf("  %s\n", report.RedactConflict(c))
	}

	// No single site reaches the paper's thresholds (f=5, >1 user)...
	v := prima.SampleVocabulary()
	ps := scenario.PolicyStore()
	for _, site := range []*prima.Log{ward, icu, lab} {
		pats, err := prima.Refine(ps, site.Snapshot(), v, prima.RefineOptions{})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("refinement over site %-4s alone: %d patterns\n", site.Site(), len(pats))
	}

	// ...but the consolidated view does.
	pats, err := prima.Refine(ps, consolidated.Snapshot(), v, prima.RefineOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("refinement over the consolidated view: %d pattern(s)\n", len(pats))
	for _, p := range pats {
		fmt.Printf("  %s (support %d, %d distinct users across sites)\n",
			p.Rule.Compact(), p.Support, p.DistinctUsers)
	}
}
