package server

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

func TestHTTPServerHardened(t *testing.T) {
	srv := HTTPServer(":0", http.NewServeMux())
	if srv.ReadHeaderTimeout != ReadHeaderTimeout || srv.ReadTimeout != ReadTimeout ||
		srv.IdleTimeout != IdleTimeout {
		t.Fatalf("timeouts not applied: %+v", srv)
	}
}

// TestServeDrainsInflight: cancellation must let an in-flight request
// finish (graceful drain), not sever it.
func TestServeDrainsInflight(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		close(entered)
		<-release
		fmt.Fprint(w, "done")
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, ln, mux, 5*time.Second) }()

	respCh := make(chan string, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/slow")
		if err != nil {
			respCh <- "error: " + err.Error()
			return
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		respCh <- string(b)
	}()
	<-entered
	cancel() // shutdown begins while the request is in flight
	time.Sleep(20 * time.Millisecond)
	close(release)
	if got := <-respCh; got != "done" {
		t.Fatalf("in-flight request got %q, want %q", got, "done")
	}
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatalf("Serve returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Serve did not return after drain")
	}
}

// TestServeShutdownExpiresGrace: a handler that outlives the grace
// period must not wedge shutdown — Serve force-closes and reports the
// deadline error.
func TestServeShutdownExpiresGrace(t *testing.T) {
	stuck := make(chan struct{})
	mux := http.NewServeMux()
	mux.HandleFunc("/stuck", func(w http.ResponseWriter, r *http.Request) {
		close(stuck)
		<-r.Context().Done() // hold until force-close
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, ln, mux, time.Second) }()
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/stuck")
		if err == nil {
			resp.Body.Close()
		}
	}()
	<-stuck
	cancel()
	select {
	case err := <-serveErr:
		if err == nil {
			t.Fatal("Serve returned nil despite a request outliving the grace period")
		}
	case <-time.After(15 * time.Second):
		t.Fatal("Serve wedged on a stuck handler")
	}
}

// TestServeSlowloris: a connection that sends no complete header
// within ReadHeaderTimeout is closed by the server, not held open.
// The test dials raw TCP, trickles a partial request line, and waits
// for the read side to observe the server hanging up.
func TestServeSlowloris(t *testing.T) {
	if testing.Short() {
		t.Skip("waits out ReadHeaderTimeout")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	serveErr := make(chan error, 1)
	go func() { serveErr <- Serve(ctx, ln, http.NewServeMux(), time.Second) }()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET / HT")); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(ReadHeaderTimeout + 10*time.Second))
	buf := make([]byte, 512)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			break // server hung up — the slowloris connection was reaped
		}
		_ = n
	}
	cancel()
	if err := <-serveErr; err != nil {
		t.Fatalf("Serve returned %v", err)
	}
}

func TestRunBadAddress(t *testing.T) {
	if err := Run(context.Background(), "256.256.256.256:99999", http.NewServeMux(), time.Second, nil); err == nil {
		t.Fatal("bad address accepted")
	}
}
