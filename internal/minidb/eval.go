package minidb

import (
	"fmt"
	"strings"
)

// env resolves column references and (in grouped mode) aggregate calls
// during expression evaluation.
type env interface {
	col(name string) (Value, error)
	agg(c *Call) (Value, bool, error) // ok=false when aggregates are not available
}

// rowEnv evaluates over a single table row.
type rowEnv struct {
	table *Table
	row   []Value
}

func (e *rowEnv) col(name string) (Value, error) {
	idx, err := e.table.colIndex(name)
	if err != nil {
		return Value{}, err
	}
	return e.row[idx], nil
}

func (e *rowEnv) agg(*Call) (Value, bool, error) { return Value{}, false, nil }

// groupEnv evaluates over one group of rows: aggregate calls are
// computed over the group; bare columns resolve only when the
// expression matches a GROUP BY expression (checked by the planner,
// which substitutes groupKeyEnv), or via the group's first row for
// rendered group-by matches.
type groupEnv struct {
	table *Table
	rows  [][]Value
	// groupExprs maps the rendered text of each GROUP BY expression to
	// its evaluated (constant within the group) value.
	groupVals map[string]Value
}

func (e *groupEnv) col(name string) (Value, error) {
	key := strings.ToLower(name)
	if v, ok := e.groupVals[key]; ok {
		return v, nil
	}
	return Value{}, fmt.Errorf("minidb: column %q must appear in GROUP BY or inside an aggregate", name)
}

func (e *groupEnv) agg(c *Call) (Value, bool, error) {
	v, err := evalAggregate(c, e.table, e.rows)
	if err != nil {
		return Value{}, true, err
	}
	return v, true, nil
}

// isAggregateName reports whether the function name is an aggregate.
func isAggregateName(name string) bool {
	switch name {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// hasAggregate reports whether the expression contains an aggregate
// call.
func hasAggregate(e Expr) bool {
	switch x := e.(type) {
	case nil:
		return false
	case *Literal, *ColRef:
		return false
	case *Unary:
		return hasAggregate(x.X)
	case *Binary:
		return hasAggregate(x.L) || hasAggregate(x.R)
	case *Call:
		if isAggregateName(x.Name) {
			return true
		}
		for _, a := range x.Args {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	case *InList:
		if hasAggregate(x.X) {
			return true
		}
		for _, a := range x.List {
			if hasAggregate(a) {
				return true
			}
		}
		return false
	case *Like:
		return hasAggregate(x.X) || hasAggregate(x.Pattern)
	case *IsNull:
		return hasAggregate(x.X)
	default:
		return false
	}
}

// eval evaluates an expression under an environment. Comparison
// operators follow SQL three-valued logic collapsed to two values:
// comparisons involving NULL are false, and NOT of such a comparison
// is true only when the underlying comparison produced a definite
// result. This keeps the engine small while matching the behaviour
// the refinement pipeline (Algorithm 5) relies on.
func eval(e Expr, en env) (Value, error) {
	switch x := e.(type) {
	case *Literal:
		return x.Val, nil
	case *ColRef:
		return en.col(x.Name)
	case *Unary:
		v, err := eval(x.X, en)
		if err != nil {
			return Value{}, err
		}
		switch x.Op {
		case "NOT":
			if v.IsNull() {
				return Null(), nil
			}
			if v.Kind() != KindBool {
				return Value{}, fmt.Errorf("minidb: NOT requires a boolean, got %s", v.Kind())
			}
			return Bool(!v.AsBool()), nil
		case "-":
			switch v.Kind() {
			case KindInt:
				return Int(-v.AsInt()), nil
			case KindFloat:
				return Float(-v.AsFloat()), nil
			case KindNull:
				return Null(), nil
			}
			return Value{}, fmt.Errorf("minidb: unary - requires a number, got %s", v.Kind())
		}
		return Value{}, fmt.Errorf("minidb: unknown unary op %q", x.Op)
	case *Binary:
		return evalBinary(x, en)
	case *Call:
		if isAggregateName(x.Name) {
			v, ok, err := en.agg(x)
			if err != nil {
				return Value{}, err
			}
			if !ok {
				return Value{}, fmt.Errorf("minidb: aggregate %s not allowed here", x.Name)
			}
			return v, nil
		}
		return evalScalarCall(x, en)
	case *InList:
		return evalIn(x, en)
	case *Like:
		return evalLike(x, en)
	case *IsNull:
		v, err := eval(x.X, en)
		if err != nil {
			return Value{}, err
		}
		res := v.IsNull()
		if x.Not {
			res = !res
		}
		return Bool(res), nil
	default:
		return Value{}, fmt.Errorf("minidb: cannot evaluate %T", e)
	}
}

func evalBinary(x *Binary, en env) (Value, error) {
	switch x.Op {
	case "AND", "OR":
		l, err := eval(x.L, en)
		if err != nil {
			return Value{}, err
		}
		lb, lok := boolOf(l)
		// Short circuit.
		if x.Op == "AND" && lok && !lb {
			return Bool(false), nil
		}
		if x.Op == "OR" && lok && lb {
			return Bool(true), nil
		}
		r, err := eval(x.R, en)
		if err != nil {
			return Value{}, err
		}
		rb, rok := boolOf(r)
		if !lok || !rok {
			// NULL-ish logic: unknown AND x => false-ish unless both
			// definite; keep it simple and return NULL.
			if x.Op == "AND" {
				if (lok && !lb) || (rok && !rb) {
					return Bool(false), nil
				}
			} else {
				if (lok && lb) || (rok && rb) {
					return Bool(true), nil
				}
			}
			return Null(), nil
		}
		if x.Op == "AND" {
			return Bool(lb && rb), nil
		}
		return Bool(lb || rb), nil
	case "=", "<>", "<", "<=", ">", ">=":
		l, err := eval(x.L, en)
		if err != nil {
			return Value{}, err
		}
		r, err := eval(x.R, en)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		cmp, ok := compare(l, r)
		if !ok {
			// Incomparable kinds: equality is false, inequality true;
			// ordering comparisons are errors.
			switch x.Op {
			case "=":
				return Bool(false), nil
			case "<>":
				return Bool(true), nil
			}
			return Value{}, fmt.Errorf("minidb: cannot compare %s with %s", l.Kind(), r.Kind())
		}
		switch x.Op {
		case "=":
			return Bool(cmp == 0), nil
		case "<>":
			return Bool(cmp != 0), nil
		case "<":
			return Bool(cmp < 0), nil
		case "<=":
			return Bool(cmp <= 0), nil
		case ">":
			return Bool(cmp > 0), nil
		case ">=":
			return Bool(cmp >= 0), nil
		}
	case "+", "-", "*", "/", "%":
		l, err := eval(x.L, en)
		if err != nil {
			return Value{}, err
		}
		r, err := eval(x.R, en)
		if err != nil {
			return Value{}, err
		}
		if l.IsNull() || r.IsNull() {
			return Null(), nil
		}
		// String concatenation via +.
		if x.Op == "+" && l.Kind() == KindText && r.Kind() == KindText {
			return Text(l.AsText() + r.AsText()), nil
		}
		if !l.isNumeric() || !r.isNumeric() {
			return Value{}, fmt.Errorf("minidb: arithmetic %s requires numbers, got %s and %s", x.Op, l.Kind(), r.Kind())
		}
		if l.Kind() == KindInt && r.Kind() == KindInt {
			a, b := l.AsInt(), r.AsInt()
			switch x.Op {
			case "+":
				return Int(a + b), nil
			case "-":
				return Int(a - b), nil
			case "*":
				return Int(a * b), nil
			case "/":
				if b == 0 {
					return Value{}, fmt.Errorf("minidb: division by zero")
				}
				return Int(a / b), nil
			case "%":
				if b == 0 {
					return Value{}, fmt.Errorf("minidb: division by zero")
				}
				return Int(a % b), nil
			}
		}
		a, b := l.AsFloat(), r.AsFloat()
		switch x.Op {
		case "+":
			return Float(a + b), nil
		case "-":
			return Float(a - b), nil
		case "*":
			return Float(a * b), nil
		case "/":
			if b == 0 {
				return Value{}, fmt.Errorf("minidb: division by zero")
			}
			return Float(a / b), nil
		case "%":
			return Value{}, fmt.Errorf("minidb: %% requires integers")
		}
	}
	return Value{}, fmt.Errorf("minidb: unknown binary op %q", x.Op)
}

func boolOf(v Value) (bool, bool) {
	if v.Kind() == KindBool {
		return v.AsBool(), true
	}
	return false, false
}

func evalIn(x *InList, en env) (Value, error) {
	v, err := eval(x.X, en)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() {
		return Null(), nil
	}
	found := false
	for _, le := range x.List {
		lv, err := eval(le, en)
		if err != nil {
			return Value{}, err
		}
		if lv.IsNull() {
			continue
		}
		if cmp, ok := compare(v, lv); ok && cmp == 0 {
			found = true
			break
		}
	}
	if x.Not {
		found = !found
	}
	return Bool(found), nil
}

func evalLike(x *Like, en env) (Value, error) {
	v, err := eval(x.X, en)
	if err != nil {
		return Value{}, err
	}
	p, err := eval(x.Pattern, en)
	if err != nil {
		return Value{}, err
	}
	if v.IsNull() || p.IsNull() {
		return Null(), nil
	}
	if v.Kind() != KindText || p.Kind() != KindText {
		return Value{}, fmt.Errorf("minidb: LIKE requires text operands")
	}
	ok := likeMatch(strings.ToLower(v.AsText()), strings.ToLower(p.AsText()))
	if x.Not {
		ok = !ok
	}
	return Bool(ok), nil
}

// likeMatch implements SQL LIKE with % (any run) and _ (any single
// character), case-insensitively (inputs are pre-lowered).
func likeMatch(s, pat string) bool {
	// Iterative two-pointer matching with backtracking on %.
	var si, pi int
	star, sBack := -1, 0
	for si < len(s) {
		if pi < len(pat) && (pat[pi] == '_' || pat[pi] == s[si]) {
			si++
			pi++
			continue
		}
		if pi < len(pat) && pat[pi] == '%' {
			star = pi
			sBack = si
			pi++
			continue
		}
		if star >= 0 {
			pi = star + 1
			sBack++
			si = sBack
			continue
		}
		return false
	}
	for pi < len(pat) && pat[pi] == '%' {
		pi++
	}
	return pi == len(pat)
}

func evalScalarCall(x *Call, en env) (Value, error) {
	argVals := make([]Value, len(x.Args))
	for i, a := range x.Args {
		v, err := eval(a, en)
		if err != nil {
			return Value{}, err
		}
		argVals[i] = v
	}
	need := func(n int) error {
		if len(argVals) != n {
			return fmt.Errorf("minidb: %s expects %d argument(s), got %d", x.Name, n, len(argVals))
		}
		return nil
	}
	switch x.Name {
	case "LOWER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if argVals[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToLower(argVals[0].AsText())), nil
	case "UPPER":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if argVals[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.ToUpper(argVals[0].AsText())), nil
	case "LENGTH":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if argVals[0].IsNull() {
			return Null(), nil
		}
		return Int(int64(len(argVals[0].AsText()))), nil
	case "COALESCE":
		for _, v := range argVals {
			if !v.IsNull() {
				return v, nil
			}
		}
		return Null(), nil
	case "ABS":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := argVals[0]
		switch v.Kind() {
		case KindNull:
			return Null(), nil
		case KindInt:
			if v.AsInt() < 0 {
				return Int(-v.AsInt()), nil
			}
			return v, nil
		case KindFloat:
			if v.AsFloat() < 0 {
				return Float(-v.AsFloat()), nil
			}
			return v, nil
		}
		return Value{}, fmt.Errorf("minidb: ABS requires a number")
	case "TRIM":
		if err := need(1); err != nil {
			return Value{}, err
		}
		if argVals[0].IsNull() {
			return Null(), nil
		}
		return Text(strings.TrimSpace(argVals[0].AsText())), nil
	case "SUBSTR":
		// SUBSTR(s, start [, length]); start is 1-based per SQL.
		if len(argVals) != 2 && len(argVals) != 3 {
			return Value{}, fmt.Errorf("minidb: SUBSTR expects 2 or 3 arguments, got %d", len(argVals))
		}
		if argVals[0].IsNull() || argVals[1].IsNull() {
			return Null(), nil
		}
		s := argVals[0].AsText()
		start := int(argVals[1].AsInt()) - 1
		if start < 0 {
			start = 0
		}
		if start > len(s) {
			return Text(""), nil
		}
		end := len(s)
		if len(argVals) == 3 {
			if argVals[2].IsNull() {
				return Null(), nil
			}
			if n := int(argVals[2].AsInt()); n >= 0 && start+n < end {
				end = start + n
			}
		}
		return Text(s[start:end]), nil
	case "ROUND":
		if err := need(1); err != nil {
			return Value{}, err
		}
		v := argVals[0]
		switch v.Kind() {
		case KindNull:
			return Null(), nil
		case KindInt:
			return v, nil
		case KindFloat:
			f := v.AsFloat()
			if f < 0 {
				return Int(int64(f - 0.5)), nil
			}
			return Int(int64(f + 0.5)), nil
		}
		return Value{}, fmt.Errorf("minidb: ROUND requires a number")
	default:
		return Value{}, fmt.Errorf("minidb: unknown function %s", x.Name)
	}
}

// evalAggregate computes an aggregate call over a group of rows.
func evalAggregate(c *Call, table *Table, rows [][]Value) (Value, error) {
	if c.Name == "COUNT" && c.Star {
		return Int(int64(len(rows))), nil
	}
	if len(c.Args) != 1 {
		return Value{}, fmt.Errorf("minidb: %s expects exactly one argument", c.Name)
	}
	arg := c.Args[0]
	if hasAggregate(arg) {
		return Value{}, fmt.Errorf("minidb: nested aggregates are not allowed")
	}
	var vals []Value
	seen := map[string]bool{}
	for _, row := range rows {
		v, err := eval(arg, &rowEnv{table: table, row: row})
		if err != nil {
			return Value{}, err
		}
		if v.IsNull() {
			continue // SQL aggregates skip NULLs
		}
		if c.Distinct {
			k := v.key()
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		vals = append(vals, v)
	}
	switch c.Name {
	case "COUNT":
		return Int(int64(len(vals))), nil
	case "SUM", "AVG":
		if len(vals) == 0 {
			return Null(), nil
		}
		allInt := true
		sum := 0.0
		for _, v := range vals {
			if !v.isNumeric() {
				return Value{}, fmt.Errorf("minidb: %s requires numeric values", c.Name)
			}
			if v.Kind() != KindInt {
				allInt = false
			}
			sum += v.AsFloat()
		}
		if c.Name == "AVG" {
			return Float(sum / float64(len(vals))), nil
		}
		if allInt {
			return Int(int64(sum)), nil
		}
		return Float(sum), nil
	case "MIN", "MAX":
		if len(vals) == 0 {
			return Null(), nil
		}
		best := vals[0]
		for _, v := range vals[1:] {
			cmp, ok := compare(v, best)
			if !ok {
				return Value{}, fmt.Errorf("minidb: %s over incomparable values", c.Name)
			}
			if (c.Name == "MIN" && cmp < 0) || (c.Name == "MAX" && cmp > 0) {
				best = v
			}
		}
		return best, nil
	}
	return Value{}, fmt.Errorf("minidb: unknown aggregate %s", c.Name)
}
