package codecfix

import "testing"

func TestThingRoundTrip(t *testing.T) {
	b := EncodeThing(42)
	v, err := DecodeThing(b)
	if err != nil || v != 42 {
		t.Fatalf("round trip: %d, %v", v, err)
	}
}
