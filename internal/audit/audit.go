// Package audit implements the PRIMA audit substrate (paper §4.2):
// the audit entry schema {(time, t), (op, X), (user, u), (data, d),
// (purpose, p), (authorized, a), (status, s)}, append-only audit logs,
// JSONL and CSV codecs, and the Audit Management federation that
// consolidates several site logs into one consistent view (the role
// DB2 Information Integrator plays in the paper's first instantiation).
//
// The log is a streaming pipeline, not a snapshot store: ingestion is
// lock-striped across shards, every append updates an incremental
// per-rule index (see index.go), and durability goes through an
// asynchronous batching sink (see sink.go). Three invariants hold:
//
//   - sequence monotonicity: every entry carries a globally unique,
//     monotonically increasing sequence number assigned at append;
//     Snapshot and Delta order by it, so the sharded log observes the
//     exact append order a single-mutex log would;
//   - flush ordering: when a sink is attached, sequence assignment and
//     sink enqueue are a single atomic step, so the durable JSONL
//     stream is written in sequence order;
//   - index consistency: per-shard group and stats accumulators are
//     updated under the same shard lock as the entry append, so a
//     merged index view always equals a full rescan of the entries it
//     has seen.
package audit

import (
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// Op is the audit outcome: whether the access was allowed.
type Op int

// Op values follow the paper: 0 = disallow, 1 = allow.
const (
	Deny  Op = 0
	Allow Op = 1
)

// String renders the op.
func (o Op) String() string {
	if o == Allow {
		return "allow"
	}
	return "deny"
}

// Status distinguishes exception-based (break-the-glass) access from
// regular access.
type Status int

// Status values follow the paper: 0 = exception-based, 1 = regular.
const (
	Exception Status = 0
	Regular   Status = 1
)

// String renders the status.
func (s Status) String() string {
	if s == Regular {
		return "regular"
	}
	return "exception"
}

// Entry is one audit record with the paper's exact schema.
//
// The prima:phi markers below feed prima-vet's phileak analyzer:
// those fields identify people and the health data touched, and must
// not reach prints, logs, or error strings except through the
// prima:redact helpers in internal/report.
type Entry struct {
	Time       time.Time `json:"time"`
	Op         Op        `json:"op"`
	User       string    `json:"user"`       // prima:phi — requesting user identity
	Data       string    `json:"data"`       // prima:phi — data category accessed
	Purpose    string    `json:"purpose"`    // prima:phi — stated access purpose
	Authorized string    `json:"authorized"` // authorization category (role)
	Status     Status    `json:"status"`

	// Site identifies the originating audit system when several logs
	// are federated; empty for a single-log deployment.
	Site string `json:"site,omitempty"`
	// Reason carries the manually entered justification of an
	// exception-based access, when one was recorded.
	Reason string `json:"reason,omitempty"` // prima:phi — free-text justification
}

// Validate reports schema violations: a usable audit row needs a
// timestamp, user, data category, purpose and role.
// blank reports whether s is empty or whitespace-only. ASCII resolves
// in the loop (typically on the first byte); anything with high bytes
// defers to TrimSpace for Unicode space handling.
func blank(s string) bool {
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' || c == '\r':
		case c < 0x80:
			return false
		default:
			return strings.TrimSpace(s) == ""
		}
	}
	return true
}

func (e *Entry) Validate() error {
	var missing []string
	if e.Time.IsZero() {
		missing = append(missing, "time")
	}
	if blank(e.User) {
		missing = append(missing, "user")
	}
	if blank(e.Data) {
		missing = append(missing, "data")
	}
	if blank(e.Purpose) {
		missing = append(missing, "purpose")
	}
	if blank(e.Authorized) {
		missing = append(missing, "authorized")
	}
	if len(missing) > 0 {
		return fmt.Errorf("audit: entry missing %s", strings.Join(missing, ", "))
	}
	if e.Op != Allow && e.Op != Deny {
		return fmt.Errorf("audit: bad op %d", e.Op)
	}
	if e.Status != Regular && e.Status != Exception {
		return fmt.Errorf("audit: bad status %d", e.Status)
	}
	return nil
}

// Rule converts the entry into a ground rule over the policy
// attributes (data, purpose, authorized) — the projection the paper
// uses to treat the audit log as the policy P_AL.
func (e Entry) Rule() policy.Rule {
	return policy.MustRule(
		policy.T("data", e.Data),
		policy.T("purpose", e.Purpose),
		policy.T("authorized", e.Authorized),
	)
}

// RuleKey returns the canonical key of Rule() without constructing
// the rule. Row-level coverage uses it to test range membership with
// one string build per audit row.
func (e Entry) RuleKey() string {
	return policy.TripleKey(e.Data, e.Purpose, e.Authorized)
}

// Key returns a canonical identity for deduplication across federated
// logs: same instant, same actor, same object, same outcome.
func (e Entry) Key() string {
	u, d := vocab.Norm(e.User), vocab.Norm(e.Data)
	p, a := vocab.Norm(e.Purpose), vocab.Norm(e.Authorized)
	var b strings.Builder
	b.Grow(28 + len(u) + len(d) + len(p) + len(a))
	b.WriteString(strconv.FormatInt(e.Time.UnixNano(), 10))
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(e.Op)))
	b.WriteByte('|')
	b.WriteString(u)
	b.WriteByte('|')
	b.WriteString(d)
	b.WriteByte('|')
	b.WriteString(p)
	b.WriteByte('|')
	b.WriteString(a)
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(int(e.Status)))
	return b.String()
}

// String renders the entry compactly.
func (e Entry) String() string {
	return fmt.Sprintf("%s %s user=%s data=%s purpose=%s authorized=%s status=%s",
		e.Time.Format(time.RFC3339), e.Op, e.User, e.Data, e.Purpose, e.Authorized, e.Status)
}

// stamped is an entry plus its global sequence number; shards store
// stamped entries so any cross-shard read can restore append order.
type stamped struct {
	seq uint64
	e   Entry
}

// shard is one lock stripe of the log: a run of stamped entries plus
// the incremental group/stats accumulators for exactly those entries.
type shard struct {
	mu      sync.RWMutex
	entries []stamped
	groups  map[groupKey]*groupAcc
	stats   statsAcc
}

// add appends one stamped entry and folds it into the shard's index
// under a single critical section.
func (s *shard) add(seq uint64, e *Entry) {
	s.mu.Lock()
	if s.entries == nil {
		// First write to the stripe: skip the doubling ramp, stamped
		// entries are wide and the early reallocations are pure churn.
		s.entries = make([]stamped, 0, 64)
	}
	s.entries = append(s.entries, stamped{seq: seq, e: *e})
	s.indexLocked(&s.entries[len(s.entries)-1].e)
	s.mu.Unlock()
}

// defaultShards is the lock-stripe count of NewLog. Sixteen stripes
// keep append contention negligible at clinic scale without making
// cross-shard reads noticeably wider.
const defaultShards = 16

// Log is a thread-safe, append-only audit log, lock-striped across
// shards. Entries are routed to a shard by a hash of (user, data,
// purpose) and stamped with a global monotone sequence number, so
// concurrent appends contend only per stripe while Snapshot and Delta
// still observe one deterministic total order.
type Log struct {
	site  string
	mask  uint64
	seq   atomic.Uint64 // last assigned sequence number
	epoch atomic.Uint64 // bumped by structural ops (Reset/Expire/Rotate)
	// floor is the sequence number the live entries start above; Reset
	// advances it to the counter so a fresh ExportCursor can export a
	// reset log (append-only after a reset keeps sequences dense).
	// Retention trims (Expire/Rotate) punch mid-range holes instead and
	// leave the floor alone — such logs are not wire-exportable.
	floor atomic.Uint64
	// addMu brackets the assign-sequence-then-add-to-shard window of
	// every append (shared side). The durable checkpoint takes the
	// exclusive side as a fence: once acquired, every sequence number
	// at or below a previously read l.seq is visible in its shard, so
	// a checkpoint cut at that sequence loses nothing.
	addMu  sync.RWMutex
	sink   atomic.Pointer[sink]
	shards []*shard
}

// NewLog returns an empty log for the named site (may be empty).
func NewLog(site string) *Log { return NewLogShards(site, defaultShards) }

// NewLogShards returns an empty log with the given number of lock
// stripes, rounded up to a power of two and clamped to [1, 256]. One
// shard reproduces the single-mutex behaviour exactly.
func NewLogShards(site string, n int) *Log {
	if n < 1 {
		n = 1
	}
	if n > 256 {
		n = 256
	}
	size := 1
	for size < n {
		size <<= 1
	}
	l := &Log{site: site, mask: uint64(size - 1), shards: make([]*shard, size)}
	for i := range l.shards {
		l.shards[i] = &shard{}
	}
	return l
}

// Site returns the log's site identifier.
func (l *Log) Site() string { return l.site }

// Shards returns the lock-stripe count.
func (l *Log) Shards() int { return len(l.shards) }

// Seq returns the last assigned sequence number (0 when empty).
func (l *Log) Seq() uint64 { return l.seq.Load() }

// shardFor routes an entry to its stripe: an FNV-1a hash over the
// (user, data, purpose) identity bytes. The op/status outcome is
// deliberately excluded so replicas and conflicting records of the
// same event land in the same stripe.
func (l *Log) shardFor(e *Entry) *shard {
	return l.shards[l.shardIndex(e)]
}

// shardIndex computes the stripe index for an entry.
func (l *Log) shardIndex(e *Entry) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for i := 0; i < len(e.User); i++ {
		h = (h ^ uint64(e.User[i])) * prime64
	}
	h = (h ^ '|') * prime64
	for i := 0; i < len(e.Data); i++ {
		h = (h ^ uint64(e.Data[i])) * prime64
	}
	h = (h ^ '|') * prime64
	for i := 0; i < len(e.Purpose); i++ {
		h = (h ^ uint64(e.Purpose[i])) * prime64
	}
	return h & l.mask
}

// Append validates and appends entries. The log's site is stamped on
// entries that do not already carry one. Sequence numbers are
// assigned per entry; when a durable sink is attached, assignment and
// sink enqueue happen atomically so the sink stream preserves
// sequence order (the flush-ordering invariant).
func (l *Log) Append(entries ...Entry) error {
	for i := range entries {
		if err := entries[i].Validate(); err != nil {
			return err
		}
	}
	if s := l.sink.Load(); s != nil || len(entries) == 1 {
		for i := range entries {
			e := &entries[i]
			if e.Site == "" {
				// Stamp a local copy; the caller's slice is not ours
				// to mutate.
				st := *e
				st.Site = l.site
				e = &st
			}
			l.addMu.RLock()
			var seq uint64
			if s != nil {
				seq = s.send(l, *e)
			} else {
				seq = l.seq.Add(1)
			}
			l.shardFor(e).add(seq, e)
			l.addMu.RUnlock()
		}
		return nil
	}
	l.appendBatch(entries, true)
	return nil
}

// appendBatch routes a sink-free batch: one sequence-range
// reservation, then each stripe is locked once and grown to its exact
// need instead of paying a lock round-trip and amortized growth per
// entry. Sequence numbers follow input order, so Snapshot observes
// the batch exactly as a per-entry loop would.
func (l *Log) appendBatch(entries []Entry, stampSite bool) {
	l.addMu.RLock()
	defer l.addMu.RUnlock()
	base := l.seq.Add(uint64(len(entries))) - uint64(len(entries))
	// Bucket the batch by shard with a counting sort over the indices,
	// so each shard's pass walks only its own entries instead of
	// skip-scanning the whole batch per stripe.
	var counts [256]int
	idx := make([]uint8, len(entries))
	for i := range entries {
		si := l.shardIndex(&entries[i])
		idx[i] = uint8(si)
		counts[si]++
	}
	var offsets [256]int
	pos := 0
	for si := range l.shards {
		offsets[si] = pos
		pos += counts[si]
	}
	perm := make([]int32, len(entries))
	for i := range entries {
		perm[offsets[idx[i]]] = int32(i)
		offsets[idx[i]]++
	}
	pos = 0
	for si, sh := range l.shards {
		if counts[si] == 0 {
			continue
		}
		bucket := perm[pos : pos+counts[si]]
		pos += counts[si]
		sh.mu.Lock()
		if need := len(sh.entries) + counts[si]; cap(sh.entries) < need {
			c := 2 * cap(sh.entries)
			if c < need {
				c = need
			}
			if c < 64 {
				c = 64
			}
			grown := make([]stamped, len(sh.entries), c)
			copy(grown, sh.entries)
			sh.entries = grown
		}
		for _, i := range bucket {
			// Copy straight into the shard slice and patch the site
			// stamp in place: the wide Entry is moved once, not twice.
			sh.entries = append(sh.entries, stamped{seq: base + uint64(i) + 1, e: entries[i]})
			st := &sh.entries[len(sh.entries)-1].e
			if stampSite && st.Site == "" {
				st.Site = l.site
			}
			sh.indexLocked(st)
		}
		sh.mu.Unlock()
	}
}

// bulkLoad appends pre-validated entries without sink interaction or
// site stamping; used by federation consolidation.
func (l *Log) bulkLoad(entries []Entry) {
	l.appendBatch(entries, false)
}

// Len returns the number of entries.
func (l *Log) Len() int {
	n := 0
	for _, sh := range l.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	return n
}

// collect copies every shard's stamped entries into one slice, in no
// particular order. Shards are read one at a time; a concurrent
// append may or may not be included, exactly like a racing Snapshot
// on a single-mutex log.
func (l *Log) collect() []stamped {
	n := 0
	for _, sh := range l.shards {
		sh.mu.RLock()
		n += len(sh.entries)
		sh.mu.RUnlock()
	}
	buf := make([]stamped, 0, n+8)
	for _, sh := range l.shards {
		sh.mu.RLock()
		buf = append(buf, sh.entries...)
		sh.mu.RUnlock()
	}
	return buf
}

// settle is the durable checkpoint's fence: after it returns, every
// append whose sequence number was assigned before the call has
// finished adding to its shard, so collectRange over a sequence read
// before the fence observes a complete cut.
func (l *Log) settle() {
	l.addMu.Lock()
	//lint:ignore SA2001 the empty critical section is the fence
	l.addMu.Unlock()
}

// collectRange returns the stamped entries with lo < seq <= hi in
// ascending sequence order.
func (l *Log) collectRange(lo, hi uint64) []stamped {
	var buf []stamped
	for _, sh := range l.shards {
		sh.mu.RLock()
		for _, se := range sh.entries {
			if se.seq > lo && se.seq <= hi {
				buf = append(buf, se)
			}
		}
		sh.mu.RUnlock()
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	return buf
}

// unstamp strips sequence numbers after ordering.
func unstamp(buf []stamped) []Entry {
	out := make([]Entry, len(buf))
	for i := range buf {
		out[i] = buf[i].e
	}
	return out
}

// Snapshot returns a copy of the entries in append order (ascending
// sequence number — the deterministic total order the sequence
// invariant guarantees).
func (l *Log) Snapshot() []Entry {
	buf := l.collect()
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	return unstamp(buf)
}

// Filtered returns a copy of the entries satisfying keep, in append
// order.
func (l *Log) Filtered(keep func(Entry) bool) []Entry {
	buf := l.collect()
	kept := buf[:0]
	for _, se := range buf {
		if keep(se.e) {
			kept = append(kept, se)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i].seq < kept[j].seq })
	if len(kept) == 0 {
		return nil
	}
	return unstamp(kept)
}

// Since returns entries with Time >= t, preserving order.
func (l *Log) Since(t time.Time) []Entry {
	return l.Filtered(func(e Entry) bool { return !e.Time.Before(t) })
}

// Exceptions returns the exception-based (break-the-glass) entries.
func (l *Log) Exceptions() []Entry {
	return l.Filtered(func(e Entry) bool { return e.Status == Exception })
}

// Reset discards all entries; used between training periods. The
// sequence counter is not rewound — sequence numbers stay unique for
// the life of the log — but the index epoch advances, invalidating
// outstanding cursors.
func (l *Log) Reset() {
	for _, sh := range l.shards {
		sh.mu.Lock()
		// Keep the backing array: a reset log is usually about to
		// ingest again (rotation, tests, sustained pipelines), and
		// snapshots never alias shard storage, so truncation is safe.
		sh.entries = sh.entries[:0]
		sh.groups = nil
		sh.stats = statsAcc{}
		sh.mu.Unlock()
	}
	l.floor.Store(l.seq.Load())
	l.epoch.Add(1)
}

// Grow pre-allocates capacity for about n further entries, spread
// evenly across the shards. Callers that can bound the expected
// volume (a simulation epoch, a day's expected traffic) use it to
// skip the per-shard reallocation ramp during ingestion; it never
// shrinks.
func (l *Log) Grow(n int) {
	if n <= 0 {
		return
	}
	per := (n + len(l.shards) - 1) / len(l.shards)
	// Hash routing is uneven on small n; leave headroom so the fuller
	// stripes do not immediately regrow.
	per += per/8 + 8
	for _, sh := range l.shards {
		sh.mu.Lock()
		if need := len(sh.entries) + per; cap(sh.entries) < need {
			grown := make([]stamped, len(sh.entries), need)
			copy(grown, sh.entries)
			sh.entries = grown
		}
		sh.mu.Unlock()
	}
}

// ErrExportInvalidated reports that an ExportCursor was cut loose by
// a structural log change (Reset/Expire/Rotate): the seq-contiguous
// ranges the cursor was exporting no longer exist, so the exporter
// must renegotiate from scratch rather than silently skip entries.
var ErrExportInvalidated = errors.New("audit: export cursor invalidated by a structural log change")

// ExportCursor marks how far a seq-ranged exporter (the wire
// federation streamer) has read the log. Unlike Cursor, whose
// consumers tolerate resyncs, an export cursor guarantees the
// contiguous range property: successive ExportDelta calls return
// exactly the entries with c.Seq() < seq <= next.Seq(), no gap and no
// duplicate, or fail with ErrExportInvalidated. The zero cursor
// starts from the beginning.
type ExportCursor struct {
	seq   uint64
	epoch uint64
	pos   []int
	// deferred holds entries observed past the positional scan but
	// above the export horizon: with concurrent appenders, a shard
	// tail can interleave seq numbers around the horizon (the fence
	// only guarantees everything at or below it is present). Entries
	// beyond the horizon are carried here, sorted by seq, and consumed
	// by prefix as the horizon passes them, keeping the positional
	// cursor strictly forward.
	deferred []stamped
}

// Seq returns the highest sequence number the cursor has exported.
func (c ExportCursor) Seq() uint64 { return c.seq }

// ExportDelta returns the entries appended since the cursor in
// ascending sequence order — exactly the contiguous range
// (c.Seq(), next.Seq()] — advancing the cursor. max bounds the batch
// (0 means unbounded). The cost is O(delta), not O(log): per-shard
// positions let each call scan only the tails appended since the last
// one. A structural change (Reset/Expire/Rotate) invalidates the
// cursor and every later call returns ErrExportInvalidated.
func (l *Log) ExportDelta(c ExportCursor, max int) ([]Entry, ExportCursor, error) {
	ep := l.epoch.Load()
	if c.pos == nil && c.seq == 0 {
		c = ExportCursor{seq: l.floor.Load(), epoch: ep, pos: make([]int, len(l.shards))}
	}
	if c.epoch != ep || len(c.pos) != len(l.shards) {
		return nil, c, ErrExportInvalidated
	}
	hi := l.seq.Load()
	if max > 0 && hi > c.seq+uint64(max) {
		hi = c.seq + uint64(max)
	}
	if hi <= c.seq {
		return nil, c, nil
	}
	// The fence guarantees every sequence number at or below hi has
	// finished adding to its shard, so the positional scan below
	// observes the complete range.
	l.settle()
	// Fast path first: stop each shard at its first above-horizon
	// entry, so catching up on a deep log costs O(batch) per call, not
	// O(remaining log). It comes up short only when an append raced
	// the horizon (a later sequence number landed in a shard before an
	// earlier one); the full scan then defers the stragglers' cohort
	// and stays correct under arbitrary interleaving.
	buf, next, ok := l.exportScan(c, hi, ep, false)
	if !ok {
		buf, next, ok = l.exportScan(c, hi, ep, true)
	}
	if !ok || l.epoch.Load() != ep {
		// A structural op raced the scan, or entries inside the range
		// are gone: the contiguity guarantee cannot be kept.
		return nil, c, ErrExportInvalidated
	}
	sort.Slice(buf, func(i, j int) bool { return buf[i].seq < buf[j].seq })
	return unstamp(buf), next, nil
}

// exportScan collects the stamped entries in (c.seq, hi] and builds
// the successor cursor. With full=false each shard's scan stops at
// the first entry above the horizon; with full=true it scans to the
// shard end, deferring above-horizon entries (sorted by seq). ok is
// false when the collected count does not match the range — a raced
// horizon on the fast path, an invalidated cursor on the full one.
func (l *Log) exportScan(c ExportCursor, hi uint64, ep uint64, full bool) ([]stamped, ExportCursor, bool) {
	buf := make([]stamped, 0, hi-c.seq)
	next := ExportCursor{seq: hi, epoch: ep, pos: make([]int, len(l.shards))}
	// The deferred buffer is sorted by seq: consume the prefix the
	// horizon has passed, alias the rest.
	k := sort.Search(len(c.deferred), func(i int) bool { return c.deferred[i].seq > hi })
	buf = append(buf, c.deferred[:k]...)
	next.deferred = c.deferred[k:]
	newDeferred := false
	for i, sh := range l.shards {
		from := c.pos[i]
		sh.mu.RLock()
		n := len(sh.entries)
		if from > n {
			sh.mu.RUnlock()
			return nil, c, false
		}
		next.pos[i] = n
		for j := from; j < n; j++ {
			se := sh.entries[j]
			if se.seq <= hi {
				buf = append(buf, se)
			} else if full {
				next.deferred = append(next.deferred, se)
				newDeferred = true
			} else {
				next.pos[i] = j
				break
			}
		}
		sh.mu.RUnlock()
	}
	if newDeferred {
		sort.Slice(next.deferred, func(i, j int) bool { return next.deferred[i].seq < next.deferred[j].seq })
	}
	return buf, next, uint64(len(buf)) == hi-c.seq
}

// ToPolicy builds the ground policy P_AL from entries: one rule per
// distinct (data, purpose, authorized) row. Per Definition 7 the
// policy is tied to the audit log; the paper's coverage arithmetic
// counts one rule per audit row, and Policy.Add deduplicates exact
// repeats, matching the Fig. 3 treatment where each row is a distinct
// rule. Pass the entries to convert (e.g. a Snapshot).
func ToPolicy(name string, entries []Entry) *policy.Policy {
	p := policy.New(name)
	for _, e := range entries {
		p.Add(e.Rule())
	}
	return p
}

// Stats summarizes a set of entries.
type Stats struct {
	Total      int
	Allowed    int
	Denied     int
	Exceptions int
	Regular    int
	Users      int
	First      time.Time
	Last       time.Time
}

// Summarize computes Stats over entries.
func Summarize(entries []Entry) Stats {
	var s Stats
	users := make(map[string]bool)
	for _, e := range entries {
		s.Total++
		if e.Op == Allow {
			s.Allowed++
		} else {
			s.Denied++
		}
		if e.Status == Exception {
			s.Exceptions++
		} else {
			s.Regular++
		}
		users[vocab.Norm(e.User)] = true
		if s.First.IsZero() || e.Time.Before(s.First) {
			s.First = e.Time
		}
		if e.Time.After(s.Last) {
			s.Last = e.Time
		}
	}
	s.Users = len(users)
	return s
}

// SortByTime sorts entries chronologically (stable, so same-instant
// entries keep their relative order).
func SortByTime(entries []Entry) {
	if len(entries) < 2 {
		return
	}
	sorted := true
	for i := 1; i < len(entries); i++ {
		if entries[i].Time.Before(entries[i-1].Time) {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	// Stable-sort an index permutation and apply it in one pass:
	// Entry is a wide struct, so moving it O(n log n) times inside
	// the sort dominates; permuting indices moves each entry once.
	idx := make([]int, len(entries))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return entries[idx[a]].Time.Before(entries[idx[b]].Time)
	})
	out := make([]Entry, len(entries))
	for i, j := range idx {
		out[i] = entries[j]
	}
	copy(entries, out)
}
