package core

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/vocab"
)

func mk3(d, p, a string) policy.Rule {
	return policy.MustRule(policy.T("data", d), policy.T("purpose", p), policy.T("authorized", a))
}

func TestGeneralizeLiftsSiblings(t *testing.T) {
	v := scenario.Vocabulary()
	// All four demographic leaves, adopted one by one.
	ps := policy.New("PS")
	for _, d := range []string{"address", "gender", "phone", "birthdate"} {
		ps.Add(mk3(d, "billing", "clerk"))
	}
	res, err := Generalize(ps, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.RulesAfter != 1 {
		t.Fatalf("rules after = %d, want 1: %v", res.RulesAfter, res.Policy)
	}
	got := res.Policy.Rules()[0]
	if d, _ := got.Value("data"); vocab.Norm(d) != "demographic" {
		t.Errorf("lifted rule = %s, want data=demographic", got)
	}
	if res.Lifted == 0 {
		t.Error("no lifts recorded")
	}
}

func TestGeneralizeDoesNotOverreach(t *testing.T) {
	v := scenario.Vocabulary()
	// Three of four demographic leaves: lifting to demographic would
	// add birthdate, so it must NOT lift.
	ps := policy.New("PS")
	for _, d := range []string{"address", "gender", "phone"} {
		ps.Add(mk3(d, "billing", "clerk"))
	}
	res, err := Generalize(ps, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.RulesAfter != 3 || res.Lifted != 0 {
		t.Fatalf("over-generalized: %+v %v", res, res.Policy)
	}
}

func TestGeneralizeMultiLevel(t *testing.T) {
	v := scenario.Vocabulary()
	// All clinical leaves: general{prescription, referral, lab_result}
	// and mental_health{psychiatry, counseling} lift level by level to
	// data=clinical.
	ps := policy.New("PS")
	for _, d := range v.GroundSet("data", "clinical") {
		ps.Add(mk3(d, "treatment", "nurse"))
	}
	res, err := Generalize(ps, v)
	if err != nil {
		t.Fatal(err)
	}
	if res.RulesAfter != 1 {
		t.Fatalf("rules = %v", res.Policy)
	}
	if d, _ := res.Policy.Rules()[0].Value("data"); vocab.Norm(d) != "clinical" {
		t.Errorf("lifted to %q, want clinical", d)
	}
}

func TestGeneralizeCollapsesSubsumedRule(t *testing.T) {
	v := scenario.Vocabulary()
	ps := policy.New("PS")
	ps.Add(mk3("demographic", "billing", "clerk")) // composite
	ps.Add(mk3("address", "billing", "clerk"))     // subsumed ground rule
	res, err := Generalize(ps, v)
	if err != nil {
		t.Fatal(err)
	}
	// Whether by lifting address up to demographic and deduplicating
	// or by pruning the subsumed rule, exactly the composite remains.
	if res.RulesAfter != 1 {
		t.Fatalf("res = %+v: %v", res, res.Policy)
	}
	if d, _ := res.Policy.Rules()[0].Value("data"); vocab.Norm(d) != "demographic" {
		t.Errorf("kept rule = %s", res.Policy.Rules()[0])
	}
}

func TestGeneralizePreservesCoverage(t *testing.T) {
	// The §5 flow plus generalization: adopt the Table 1 pattern,
	// generalize, and verify row coverage is untouched.
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	ps.Add(scenario.RefinementPattern())
	before, err := EntryCoverage(ps, scenario.Table1(), v)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Generalize(ps, v)
	if err != nil {
		t.Fatal(err)
	}
	after, err := EntryCoverage(res.Policy, scenario.Table1(), v)
	if err != nil {
		t.Fatal(err)
	}
	if before.Coverage != after.Coverage {
		t.Errorf("coverage changed: %v -> %v", before.Coverage, after.Coverage)
	}
	if res.RulesAfter > res.RulesBefore {
		t.Errorf("generalization grew the policy: %+v", res)
	}
}

// Property: for random ground policies, Generalize preserves the range
// exactly and never increases the rule count. Idempotence: a second
// pass changes nothing.
func TestGeneralizeRangePreservationProperty(t *testing.T) {
	v := scenario.Vocabulary()
	dataVals := v.Hierarchy("data").Leaves()
	purposeVals := v.Hierarchy("purpose").Leaves()
	roleVals := v.Hierarchy("authorized").Leaves()
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		ps := policy.New("PS")
		n := 1 + rng.Intn(14)
		for i := 0; i < n; i++ {
			ps.Add(mk3(
				dataVals[rng.Intn(len(dataVals))],
				purposeVals[rng.Intn(len(purposeVals))],
				roleVals[rng.Intn(len(roleVals))],
			))
		}
		want, err := policy.NewRange(ps, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Generalize(ps, v)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		got, err := policy.NewRange(res.Policy, v, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want.Keys(), got.Keys()) {
			t.Fatalf("trial %d: range changed\nbefore: %v\nafter: %v", trial, want.Keys(), got.Keys())
		}
		if res.RulesAfter > res.RulesBefore {
			t.Fatalf("trial %d: rule count grew: %+v", trial, res)
		}
		res2, err := Generalize(res.Policy, v)
		if err != nil {
			t.Fatal(err)
		}
		if res2.Lifted != 0 || res2.Removed != 0 {
			t.Fatalf("trial %d: not idempotent: %+v", trial, res2)
		}
	}
}

func TestGeneralizeEmptyPolicy(t *testing.T) {
	v := scenario.Vocabulary()
	res, err := Generalize(policy.New("PS"), v)
	if err != nil {
		t.Fatal(err)
	}
	if res.RulesAfter != 0 || res.Policy.Len() != 0 {
		t.Errorf("res = %+v", res)
	}
}

func TestGeneralizeLeavesInputUntouched(t *testing.T) {
	v := scenario.Vocabulary()
	ps := policy.New("PS")
	for _, d := range []string{"address", "gender", "phone", "birthdate"} {
		ps.Add(mk3(d, "billing", "clerk"))
	}
	if _, err := Generalize(ps, v); err != nil {
		t.Fatal(err)
	}
	if ps.Len() != 4 {
		t.Errorf("input policy mutated: %d rules", ps.Len())
	}
}
