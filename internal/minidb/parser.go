package minidb

import (
	"fmt"
	"strconv"
	"strings"
)

type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement.
func Parse(src string) (Stmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	st, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	// optional trailing semicolon
	if p.peekPunct(";") {
		p.pos++
	}
	if p.cur().kind != tokEOF {
		return nil, fmt.Errorf("minidb: unexpected %s after statement", p.cur())
	}
	return st, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) next() token { t := p.toks[p.pos]; p.pos++; return t }

func (p *parser) peekKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) acceptKeyword(kw string) bool {
	if p.peekKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectKeyword(kw string) error {
	if !p.acceptKeyword(kw) {
		return fmt.Errorf("minidb: expected %s, found %s", kw, p.cur())
	}
	return nil
}

func (p *parser) peekPunct(s string) bool {
	t := p.cur()
	return t.kind == tokPunct && t.text == s
}

func (p *parser) acceptPunct(s string) bool {
	if p.peekPunct(s) {
		p.pos++
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.acceptPunct(s) {
		return fmt.Errorf("minidb: expected %q, found %s", s, p.cur())
	}
	return nil
}

func (p *parser) expectIdent() (string, error) {
	t := p.cur()
	if t.kind != tokIdent {
		return "", fmt.Errorf("minidb: expected identifier, found %s", t)
	}
	if reserved[strings.ToUpper(t.text)] {
		return "", fmt.Errorf("minidb: reserved word %s used as identifier", t)
	}
	p.pos++
	return t.text, nil
}

// reserved words that cannot be bare identifiers.
var reserved = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "LIMIT": true, "OFFSET": true, "AS": true,
	"AND": true, "OR": true, "NOT": true, "IN": true, "LIKE": true, "IS": true,
	"NULL": true, "INSERT": true, "INTO": true, "VALUES": true, "CREATE": true,
	"TABLE": true, "DROP": true, "DELETE": true, "UPDATE": true, "SET": true,
	"DISTINCT": true, "ASC": true, "DESC": true,
	"JOIN": true, "ON": true, "INNER": true, "LEFT": true, "OUTER": true,
	"INDEX": true, "BETWEEN": true, "EXPLAIN": true,
}

func (p *parser) parseStmt() (Stmt, error) {
	switch {
	case p.peekKeyword("EXPLAIN"):
		p.pos++
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &ExplainStmt{Select: sel}, nil
	case p.peekKeyword("SELECT"):
		return p.parseSelect()
	case p.peekKeyword("INSERT"):
		return p.parseInsert()
	case p.peekKeyword("CREATE"):
		return p.parseCreate()
	case p.peekKeyword("DROP"):
		return p.parseDrop()
	case p.peekKeyword("DELETE"):
		return p.parseDelete()
	case p.peekKeyword("UPDATE"):
		return p.parseUpdate()
	default:
		return nil, fmt.Errorf("minidb: expected a statement, found %s", p.cur())
	}
}

func (p *parser) parseSelect() (*SelectStmt, error) {
	if err := p.expectKeyword("SELECT"); err != nil {
		return nil, err
	}
	st := &SelectStmt{Limit: -1}
	st.Distinct = p.acceptKeyword("DISTINCT")
	for {
		if p.acceptPunct("*") {
			st.Items = append(st.Items, SelectItem{Star: true})
		} else {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			item := SelectItem{Expr: e}
			if p.acceptKeyword("AS") {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			} else if p.cur().kind == tokIdent && !p.anyClauseKeyword() {
				alias, err := p.expectIdent()
				if err != nil {
					return nil, err
				}
				item.Alias = alias
			}
			st.Items = append(st.Items, item)
		}
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if alias, ok, err := p.acceptAlias(); err != nil {
		return nil, err
	} else if ok {
		st.TableAlias = alias
	}
	for {
		kind := JoinInner
		switch {
		case p.acceptKeyword("INNER"):
			// INNER JOIN
		case p.acceptKeyword("LEFT"):
			p.acceptKeyword("OUTER")
			kind = JoinLeft
		default:
			if !p.peekKeyword("JOIN") {
				goto joinsDone
			}
		}
		if err := p.expectKeyword("JOIN"); err != nil {
			return nil, err
		}
		jc := JoinClause{Kind: kind}
		if jc.Table, err = p.expectIdent(); err != nil {
			return nil, err
		}
		if alias, ok, err := p.acceptAlias(); err != nil {
			return nil, err
		} else if ok {
			jc.Alias = alias
		}
		if err := p.expectKeyword("ON"); err != nil {
			return nil, err
		}
		if jc.On, err = p.parseExpr(); err != nil {
			return nil, err
		}
		st.Joins = append(st.Joins, jc)
	}
joinsDone:
	if p.acceptKeyword("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("GROUP") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			st.GroupBy = append(st.GroupBy, e)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("HAVING") {
		if st.Having, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	if p.acceptKeyword("ORDER") {
		if err := p.expectKeyword("BY"); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			it := OrderItem{Expr: e}
			if p.acceptKeyword("DESC") {
				it.Desc = true
			} else {
				p.acceptKeyword("ASC")
			}
			st.OrderBy = append(st.OrderBy, it)
			if !p.acceptPunct(",") {
				break
			}
		}
	}
	if p.acceptKeyword("LIMIT") {
		n, err := p.expectInt()
		if err != nil {
			return nil, err
		}
		st.Limit = n
		if p.acceptKeyword("OFFSET") {
			m, err := p.expectInt()
			if err != nil {
				return nil, err
			}
			st.Offset = m
		}
	}
	return st, nil
}

// anyClauseKeyword reports whether the current token starts a clause,
// so a bare identifier before it is an alias.
func (p *parser) anyClauseKeyword() bool {
	for _, kw := range []string{"FROM", "WHERE", "GROUP", "HAVING", "ORDER", "LIMIT", "OFFSET",
		"AND", "OR", "ASC", "DESC", "JOIN", "INNER", "LEFT", "ON"} {
		if p.peekKeyword(kw) {
			return true
		}
	}
	return false
}

// acceptAlias parses an optional table alias ([AS] ident).
func (p *parser) acceptAlias() (string, bool, error) {
	if p.acceptKeyword("AS") {
		a, err := p.expectIdent()
		return a, err == nil, err
	}
	if p.cur().kind == tokIdent && !p.anyClauseKeyword() && !reserved[strings.ToUpper(p.cur().text)] {
		a, err := p.expectIdent()
		return a, err == nil, err
	}
	return "", false, nil
}

func (p *parser) expectInt() (int, error) {
	t := p.cur()
	if t.kind != tokNumber {
		return 0, fmt.Errorf("minidb: expected integer, found %s", t)
	}
	n, err := strconv.Atoi(t.text)
	if err != nil {
		return 0, fmt.Errorf("minidb: bad integer %q: %w", t.text, err)
	}
	p.pos++
	return n, nil
}

func (p *parser) parseInsert() (*InsertStmt, error) {
	if err := p.expectKeyword("INSERT"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("INTO"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &InsertStmt{Table: name}
	if p.acceptPunct("(") {
		for {
			col, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			st.Cols = append(st.Cols, col)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKeyword("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		st.Rows = append(st.Rows, row)
		if !p.acceptPunct(",") {
			break
		}
	}
	return st, nil
}

func (p *parser) parseCreate() (Stmt, error) {
	if err := p.expectKeyword("CREATE"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("INDEX") {
		return p.parseCreateIndex()
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &CreateTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("NOT"); err != nil {
			return nil, err
		}
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfNotExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		t := p.cur()
		if t.kind != tokIdent {
			return nil, fmt.Errorf("minidb: expected column type, found %s", t)
		}
		p.pos++
		ct, err := parseColumnType(t.text)
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, Column{Name: col, Type: ct})
		if !p.acceptPunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	if p.acceptKeyword("STORAGE") {
		backend, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		st.Storage = strings.ToLower(backend)
	}
	return st, nil
}

func parseColumnType(s string) (ColumnType, error) {
	switch strings.ToUpper(s) {
	case "INT", "INTEGER", "BIGINT":
		return TypeInt, nil
	case "FLOAT", "REAL", "DOUBLE":
		return TypeFloat, nil
	case "TEXT", "VARCHAR", "STRING", "CHAR":
		return TypeText, nil
	case "BOOL", "BOOLEAN":
		return TypeBool, nil
	case "TIMESTAMP", "DATETIME", "TIME":
		return TypeTime, nil
	default:
		return 0, fmt.Errorf("minidb: unknown column type %q", s)
	}
}

func (p *parser) parseDrop() (*DropTableStmt, error) {
	if err := p.expectKeyword("DROP"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("TABLE"); err != nil {
		return nil, err
	}
	st := &DropTableStmt{}
	if p.acceptKeyword("IF") {
		if err := p.expectKeyword("EXISTS"); err != nil {
			return nil, err
		}
		st.IfExists = true
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st.Table = name
	return st, nil
}

func (p *parser) parseDelete() (*DeleteStmt, error) {
	if err := p.expectKeyword("DELETE"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &DeleteStmt{Table: name}
	if p.acceptKeyword("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

func (p *parser) parseUpdate() (*UpdateStmt, error) {
	if err := p.expectKeyword("UPDATE"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	st := &UpdateStmt{Table: name}
	if err := p.expectKeyword("SET"); err != nil {
		return nil, err
	}
	for {
		col, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		st.Cols = append(st.Cols, col)
		st.Exprs = append(st.Exprs, e)
		if !p.acceptPunct(",") {
			break
		}
	}
	if p.acceptKeyword("WHERE") {
		if st.Where, err = p.parseExpr(); err != nil {
			return nil, err
		}
	}
	return st, nil
}

// parseCreateIndex parses the tail of CREATE INDEX name ON table (col).
func (p *parser) parseCreateIndex() (*CreateIndexStmt, error) {
	st := &CreateIndexStmt{}
	var err error
	if st.Name, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("ON"); err != nil {
		return nil, err
	}
	if st.Table, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	if st.Col, err = p.expectIdent(); err != nil {
		return nil, err
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return st, nil
}

// Expression grammar, lowest to highest precedence:
//
//	expr    := orExpr
//	orExpr  := andExpr (OR andExpr)*
//	andExpr := notExpr (AND notExpr)*
//	notExpr := NOT notExpr | predicate
//	predicate := addExpr [compOp addExpr | [NOT] IN (...) | [NOT] LIKE addExpr | IS [NOT] NULL]
//	addExpr := mulExpr (("+"|"-") mulExpr)*
//	mulExpr := unary (("*"|"/"|"%") unary)*
//	unary   := "-" unary | primary
//	primary := literal | call | ident | "(" expr ")"
func (p *parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("OR") {
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "OR", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.acceptKeyword("AND") {
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: "AND", L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseNot() (Expr, error) {
	if p.acceptKeyword("NOT") {
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "NOT", X: x}, nil
	}
	return p.parsePredicate()
}

func (p *parser) parsePredicate() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for _, op := range []string{"=", "<>", "!=", "<=", ">=", "<", ">"} {
		if p.peekPunct(op) {
			p.pos++
			r, err := p.parseAdd()
			if err != nil {
				return nil, err
			}
			canon := op
			if canon == "!=" {
				canon = "<>"
			}
			return &Binary{Op: canon, L: l, R: r}, nil
		}
	}
	not := false
	if p.peekKeyword("NOT") {
		// lookahead: NOT IN / NOT LIKE / NOT BETWEEN
		save := p.pos
		p.pos++
		if p.peekKeyword("IN") || p.peekKeyword("LIKE") || p.peekKeyword("BETWEEN") {
			not = true
		} else {
			p.pos = save
			return l, nil
		}
	}
	switch {
	case p.acceptKeyword("BETWEEN"):
		// x BETWEEN a AND b desugars to x >= a AND x <= b.
		lo, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("AND"); err != nil {
			return nil, err
		}
		hi, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		rng := &Binary{Op: "AND",
			L: &Binary{Op: ">=", L: l, R: lo},
			R: &Binary{Op: "<=", L: l, R: hi},
		}
		if not {
			return &Unary{Op: "NOT", X: rng}, nil
		}
		return rng, nil
	case p.acceptKeyword("IN"):
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var list []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			list = append(list, e)
			if !p.acceptPunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return &InList{X: l, Not: not, List: list}, nil
	case p.acceptKeyword("LIKE"):
		pat, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &Like{X: l, Not: not, Pattern: pat}, nil
	case p.acceptKeyword("IS"):
		isNot := p.acceptKeyword("NOT")
		if err := p.expectKeyword("NULL"); err != nil {
			return nil, err
		}
		return &IsNull{X: l, Not: isNot}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.acceptPunct("+"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "+", L: l, R: r}
		case p.acceptPunct("-"):
			r, err := p.parseMul()
			if err != nil {
				return nil, err
			}
			l = &Binary{Op: "-", L: l, R: r}
		default:
			return l, nil
		}
	}
}

func (p *parser) parseMul() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch {
		case p.peekPunct("*"):
			op = "*"
		case p.peekPunct("/"):
			op = "/"
		case p.peekPunct("%"):
			op = "%"
		default:
			return l, nil
		}
		p.pos++
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &Binary{Op: op, L: l, R: r}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	if p.acceptPunct("-") {
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Unary{Op: "-", X: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokNumber:
		p.pos++
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, fmt.Errorf("minidb: bad number %q: %w", t.text, err)
			}
			return &Literal{Val: Float(f)}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("minidb: bad number %q: %w", t.text, err)
		}
		return &Literal{Val: Int(n)}, nil
	case tokString:
		p.pos++
		return &Literal{Val: Text(t.text)}, nil
	case tokPunct:
		if t.text == "(" {
			p.pos++
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return e, nil
		}
	case tokIdent:
		up := strings.ToUpper(t.text)
		switch up {
		case "NULL":
			p.pos++
			return &Literal{Val: Null()}, nil
		case "TRUE":
			p.pos++
			return &Literal{Val: Bool(true)}, nil
		case "FALSE":
			p.pos++
			return &Literal{Val: Bool(false)}, nil
		}
		// Function call?
		if p.pos+1 < len(p.toks) && p.toks[p.pos+1].kind == tokPunct && p.toks[p.pos+1].text == "(" {
			p.pos += 2 // name and '('
			call := &Call{Name: up}
			if p.acceptPunct("*") {
				call.Star = true
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
				return call, nil
			}
			call.Distinct = p.acceptKeyword("DISTINCT")
			if !p.peekPunct(")") {
				for {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, e)
					if !p.acceptPunct(",") {
						break
					}
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			return call, nil
		}
		if reserved[up] {
			return nil, fmt.Errorf("minidb: unexpected keyword %s in expression", t)
		}
		p.pos++
		return &ColRef{Name: t.text}, nil
	}
	return nil, fmt.Errorf("minidb: unexpected %s in expression", t)
}
