package minidb

import (
	"bufio"
	"fmt"
	"io"
	"strings"
	"time"
)

// Dump writes the whole database as a SQL script (schema, rows,
// indexes) that Load replays. Tables are emitted in name order and
// rows in heap order, so dumps of equal databases are byte-identical.
func (db *Database) Dump(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "-- minidb dump: %d table(s)\n", len(db.TableNames())); err != nil {
		return err
	}
	for _, name := range db.TableNames() {
		t, err := db.Table(name)
		if err != nil {
			return err
		}
		cols := t.Columns()
		defs := make([]string, len(cols))
		for i, c := range cols {
			defs[i] = c.Name + " " + c.Type.String()
		}
		if _, err := fmt.Fprintf(bw, "CREATE TABLE %s (%s);\n", t.Name(), strings.Join(defs, ", ")); err != nil {
			return err
		}
		rows := t.snapshot()
		const batch = 64
		for start := 0; start < len(rows); start += batch {
			end := start + batch
			if end > len(rows) {
				end = len(rows)
			}
			tuples := make([]string, 0, end-start)
			for _, row := range rows[start:end] {
				lits := make([]string, len(row))
				for i, v := range row {
					lits[i] = sqlLiteral(v)
				}
				tuples = append(tuples, "("+strings.Join(lits, ", ")+")")
			}
			if _, err := fmt.Fprintf(bw, "INSERT INTO %s VALUES %s;\n", t.Name(), strings.Join(tuples, ", ")); err != nil {
				return err
			}
		}
		for i, col := range t.Indexes() {
			if _, err := fmt.Fprintf(bw, "CREATE INDEX %s_ix%d ON %s (%s);\n", t.Name(), i, t.Name(), col); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// sqlLiteral renders a value as a SQL literal accepted by the parser.
func sqlLiteral(v Value) string {
	switch v.Kind() {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.AsBool() {
			return "TRUE"
		}
		return "FALSE"
	case KindInt, KindFloat:
		return v.String()
	case KindTime:
		return "'" + v.AsTime().UTC().Format(time.RFC3339Nano) + "'"
	default:
		return "'" + strings.ReplaceAll(v.AsText(), "'", "''") + "'"
	}
}

// Load reads a script produced by Dump (or hand-written SQL) into a
// fresh database.
func Load(r io.Reader) (*Database, error) {
	db := NewDatabase()
	if err := db.LoadScript(r); err != nil {
		return nil, err
	}
	return db, nil
}

// LoadScript executes every statement of a SQL script against the
// database. Statements are split on top-level semicolons using the
// real lexer, so string literals containing ';' survive.
func (db *Database) LoadScript(r io.Reader) error {
	raw, err := io.ReadAll(r)
	if err != nil {
		return fmt.Errorf("minidb: read script: %w", err)
	}
	stmts, err := SplitStatements(string(raw))
	if err != nil {
		return err
	}
	for i, stmt := range stmts {
		if _, err := db.Exec(stmt); err != nil {
			return fmt.Errorf("minidb: script statement %d: %w", i+1, err)
		}
	}
	return nil
}

// SplitStatements tokenizes src and splits it into individual
// statements at top-level semicolons. Comments and blank segments are
// skipped.
func SplitStatements(src string) ([]string, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	var out []string
	start := 0 // byte offset of the current statement
	tokSeen := false
	for _, t := range toks {
		switch {
		case t.kind == tokEOF:
			if tokSeen {
				if s := strings.TrimSpace(src[start:]); s != "" {
					out = append(out, s)
				}
			}
		case t.kind == tokPunct && t.text == ";":
			if tokSeen {
				out = append(out, strings.TrimSpace(src[start:t.pos]))
			}
			start = t.pos + 1
			tokSeen = false
		default:
			tokSeen = true
		}
	}
	return out, nil
}
