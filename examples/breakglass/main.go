// Breakglass: a longitudinal study of the PRIMA feedback loop — the
// quantitative version of the paper's Figure 2. A simulated hospital
// runs for several epochs; after each epoch, refinement analyses the
// epoch's audit log and the privacy officer adopts the recurring
// multi-user practices. Coverage climbs toward (but never reaches)
// 100 %: the residual exceptions are the injected violations, which
// the distinct-user condition keeps out of the policy.
package main

import (
	"fmt"
	"log"
	"strings"

	prima "repro"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/workflow"
)

func main() {
	const (
		seed   = 2007
		epochs = 6
		days   = 15
	)
	cfg := workflow.DefaultHospital(seed)
	sim, err := workflow.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{})

	fmt.Printf("simulating %d epochs of %d days (seed %d)\n\n", epochs, days, seed)
	fmt.Println("epoch  entries  exceptions  coverage  adopted")
	var adopted []prima.Rule
	for epoch := 1; epoch <= epochs; epoch++ {
		entries, err := sim.Run((epoch-1)*days, days)
		if err != nil {
			log.Fatal(err)
		}
		round, err := sess.Run(entries, core.AdoptAll)
		if err != nil {
			log.Fatal(err)
		}
		st := audit.Summarize(entries)
		bar := strings.Repeat("#", int(round.CoverageBefore*30))
		fmt.Printf("%5d  %7d  %10d  %7.1f%%  %-7d %s\n",
			epoch, st.Total, st.Exceptions, round.CoverageBefore*100, len(round.Adopted), bar)
		adopted = append(adopted, round.Adopted...)
	}

	informal, violations := sim.GroundTruth()
	sc := workflow.Evaluate(adopted, informal, violations)
	fmt.Printf("\nadopted rules (%d):\n", len(adopted))
	for _, r := range adopted {
		fmt.Printf("  %s\n", r.Compact())
	}
	fmt.Printf("extraction precision %.2f, recall %.2f\n", sc.Precision, sc.Recall)
	fmt.Printf("violations correctly kept out of policy: %d\n", len(violations)-sc.FalsePositives)

	// Why does coverage plateau below 100 %? Explain the residue.
	entries, err := sim.Run(epochs*days, days)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.EntryCoverage(cfg.Policy, entries, cfg.Vocab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfinal-epoch coverage: %.1f%%; %d uncovered accesses remain:\n",
		rep.Coverage*100, len(rep.Uncovered))
	kinds := map[string]int{}
	for _, e := range rep.Uncovered {
		kinds[e.Rule().Compact()]++
	}
	for rule, n := range kinds {
		fmt.Printf("  %3dx %s  <- injected violation, must stay uncovered\n", n, rule)
	}
}
