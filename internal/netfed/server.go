package netfed

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// handshakeTimeout bounds how long an accepted connection may stall
// before its hello arrives.
const handshakeTimeout = 10 * time.Second

// RefineConfig enables continuous consolidation-side refinement: each
// epoch merges every site's incremental rule index, measures §5
// coverage, mines Algorithm 4/5 patterns cross-site, and applies the
// E11 suspicion review before adopting rules into the store.
type RefineConfig struct {
	PS    *policy.Policy
	Vocab *vocab.Vocabulary
	Opts  core.Options
	// Interval drives the background epoch loop started by Serve;
	// zero means epochs run only when RunEpoch is called.
	Interval time.Duration
	// InvestigateAt / RejectAt are the E11 suspicion thresholds. With
	// RejectAt zero the reviewer is AdoptAll (every mined pattern is
	// adopted, the paper's default federation posture).
	InvestigateAt, RejectAt float64
	// MaxPractice bounds the cross-site practice-evidence window the
	// suspicion reviewer scores against; when exceeded the oldest half
	// is dropped. Default 1<<20 entries.
	MaxPractice int
}

// ConsolidatorOptions tunes a Consolidator.
type ConsolidatorOptions struct {
	// MaxConns caps concurrent site connections. Default 4096.
	MaxConns int
	// Window is the ack window granted in the hello ack. Default 8.
	Window int
	// Refine enables continuous refinement epochs; nil disables them
	// (the consolidator is then a pure federated store).
	Refine *RefineConfig
	// OnError observes per-connection faults. May be nil.
	OnError func(error)
}

func (o ConsolidatorOptions) withDefaults() ConsolidatorOptions {
	if o.MaxConns <= 0 {
		o.MaxConns = 4096
	}
	if o.Window <= 0 {
		o.Window = 8
	}
	return o
}

// siteState is one site's fold state: its reconstructed log and the
// highest contiguous remote sequence folded. The mutex serializes
// folds so the watermark check and the append are atomic — several
// connections for the same site (a reconnect racing its predecessor)
// cannot double-fold a batch.
type siteState struct {
	mu   sync.Mutex // lock class netfed.siteState
	log  *audit.Log
	seq  uint64
	dups uint64 // duplicate entries skipped by the watermark
}

// analytics is the consolidation-side refinement state, the cross-site
// counterpart of core.StreamSession: the policy store, the rejected-
// rule memory, epoch history, and the bounded practice-evidence window
// the suspicion reviewer scores against.
type analytics struct {
	mu          sync.Mutex // lock class netfed.analytics
	cfg         RefineConfig
	rejected    map[string]bool
	history     []core.Round
	practice    []audit.Entry
	maxPractice int
}

// foldPractice absorbs newly folded practice entries, truncating the
// oldest half when the evidence window overflows.
func (a *analytics) foldPractice(entries []audit.Entry) {
	a.mu.Lock()
	a.practice = append(a.practice, entries...)
	if len(a.practice) > a.maxPractice {
		n := copy(a.practice, a.practice[len(a.practice)/2:])
		a.practice = a.practice[:n]
	}
	a.mu.Unlock()
}

// Consolidator is the server side of the wire federation: it accepts
// site connections (thousands concurrently — one read goroutine plus
// one ack-writer goroutine per connection, admission-controlled by a
// connection pool), folds delta batches into per-site logs with
// watermark dedup, and optionally drives continuous refinement epochs
// plus cross-site suspicion review over the merged rule index.
type Consolidator struct {
	opts ConsolidatorOptions
	pool *connPool

	mu           sync.Mutex // lock class netfed.Consolidator: sites registry + lifecycle
	sites        map[string]*siteState
	ln           net.Listener
	closed       bool
	epochStarted bool

	refine *analytics // nil when refinement is disabled

	stop chan struct{}
	wg   sync.WaitGroup

	batches atomic.Uint64
	entries atomic.Uint64
	dups    atomic.Uint64
	epochs  atomic.Uint64
}

// NewConsolidator builds a consolidator. With Refine set, the options
// must be servable from the incremental rule index (the default SQL
// analysis) — custom extractors cannot be merged cross-site.
func NewConsolidator(opts ConsolidatorOptions) (*Consolidator, error) {
	opts = opts.withDefaults()
	c := &Consolidator{
		opts:  opts,
		pool:  newConnPool(opts.MaxConns),
		sites: make(map[string]*siteState),
		stop:  make(chan struct{}),
	}
	if r := opts.Refine; r != nil {
		if r.PS == nil || r.Vocab == nil {
			return nil, errors.New("netfed: RefineConfig needs a policy store and vocabulary")
		}
		if !core.IndexExtractable(r.Opts) {
			return nil, errors.New("netfed: refinement options not servable from the rule index")
		}
		cfg := *r
		if cfg.MaxPractice <= 0 {
			cfg.MaxPractice = 1 << 20
		}
		c.refine = &analytics{
			cfg:         cfg,
			rejected:    make(map[string]bool),
			maxPractice: cfg.MaxPractice,
		}
	}
	return c, nil
}

// Serve accepts site connections on ln until Close. It starts the
// background epoch loop on first call when RefineConfig.Interval is
// set. Returns nil after Close, or the listener's error.
func (c *Consolidator) Serve(ln net.Listener) error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		ln.Close()
		return errPoolClosed
	}
	c.ln = ln
	startEpochs := c.refine != nil && c.refine.cfg.Interval > 0 && !c.epochStarted
	if startEpochs {
		c.epochStarted = true
	}
	c.mu.Unlock()
	if startEpochs {
		c.wg.Add(1)
		go c.epochLoop(c.refine.cfg.Interval)
	}
	for {
		conn, err := ln.Accept()
		if err != nil {
			c.mu.Lock()
			closed := c.closed
			c.mu.Unlock()
			if closed {
				return nil
			}
			return err
		}
		if err := c.pool.add(conn); err != nil {
			conn.Close()
			if errors.Is(err, errPoolClosed) {
				return nil
			}
			c.report(err)
			continue
		}
		c.wg.Add(1)
		go c.handleConn(conn)
	}
}

// epochLoop runs refinement epochs at the configured cadence until
// Close.
func (c *Consolidator) epochLoop(interval time.Duration) {
	defer c.wg.Done()
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-t.C:
			if _, err := c.RunEpoch(); err != nil {
				c.report(err)
			}
		case <-c.stop:
			return
		}
	}
}

// site returns the fold state for a site, creating it on first
// contact.
func (c *Consolidator) site(name string) *siteState {
	c.mu.Lock()
	defer c.mu.Unlock()
	s, ok := c.sites[name]
	if !ok {
		s = &siteState{log: audit.NewLog(name)}
		c.sites[name] = s
	}
	return s
}

// siteLogs snapshots the per-site logs in sorted site order — the
// deterministic federation source order that makes the wire-fed
// Consolidate byte-identical to the in-process oracle built over the
// same sites in the same order.
func (c *Consolidator) siteLogs() []*audit.Log {
	c.mu.Lock()
	names := make([]string, 0, len(c.sites))
	for name := range c.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	logs := make([]*audit.Log, 0, len(names))
	for _, name := range names {
		logs = append(logs, c.sites[name].log)
	}
	c.mu.Unlock()
	return logs
}

// SiteLog returns the reconstructed log for a site (nil if the site
// has never connected).
func (c *Consolidator) SiteLog(name string) *audit.Log {
	c.mu.Lock()
	defer c.mu.Unlock()
	if s, ok := c.sites[name]; ok {
		return s.log
	}
	return nil
}

// ackSender coalesces acks for one connection: the reader posts the
// latest folded sequence and wakes the writer; consecutive folds that
// land while an ack write is in flight collapse into one ack frame
// (the protocol only needs the highest contiguous sequence).
type ackSender struct {
	conn net.Conn
	wake chan struct{} // cap 1
	done chan struct{}

	mu  sync.Mutex // lock class netfed.ackSender
	seq uint64
}

// post records a folded sequence and nudges the writer.
func (a *ackSender) post(seq uint64) {
	a.mu.Lock()
	if seq > a.seq {
		a.seq = seq
	}
	a.mu.Unlock()
	select {
	case a.wake <- struct{}{}:
	default:
	}
}

// run writes coalesced ack frames until done closes. Write errors end
// the session through the reader (the conn is shared), so they only
// stop the writer here.
func (a *ackSender) run(wg *sync.WaitGroup) {
	defer wg.Done()
	var frame []byte
	var payload []byte
	var last uint64
	for {
		select {
		case <-a.wake:
		case <-a.done:
			return
		}
		a.mu.Lock()
		seq := a.seq
		a.mu.Unlock()
		if seq == last {
			continue
		}
		payload = appendAck(payload[:0], seq)
		frame = AppendFrame(frame[:0], MsgAck, payload)
		if _, err := a.conn.Write(frame); err != nil {
			return
		}
		last = seq
	}
}

// handleConn owns one site connection: handshake, then a read loop
// folding batches, with the paired ackSender goroutine writing
// coalesced acks back.
func (c *Consolidator) handleConn(conn net.Conn) {
	defer c.wg.Done()
	defer c.pool.remove(conn)
	defer conn.Close()

	fr := NewFrameReader(conn)
	conn.SetReadDeadline(time.Now().Add(handshakeTimeout))
	typ, payload, err := fr.Next()
	if err != nil {
		c.report(fmt.Errorf("netfed: handshake read: %w", err))
		return
	}
	if typ != MsgHello {
		c.refuse(conn, "expected hello")
		return
	}
	h, err := parseHello(payload)
	if err != nil {
		c.refuse(conn, err.Error())
		return
	}
	if h.version != ProtocolVersion {
		c.refuse(conn, fmt.Sprintf("protocol version %d, want %d", h.version, ProtocolVersion))
		return
	}
	if h.site == "" {
		c.refuse(conn, "empty site name")
		return
	}
	conn.SetReadDeadline(time.Time{})

	site := c.site(h.site)
	site.mu.Lock()
	resume := site.seq
	site.mu.Unlock()
	hb := AppendFrame(nil, MsgHelloAck, appendHelloAck(nil, helloAck{
		version: ProtocolVersion,
		resume:  resume,
		window:  uint64(c.opts.Window),
	}))
	if _, err := conn.Write(hb); err != nil {
		c.report(fmt.Errorf("netfed: hello ack write: %w", err))
		return
	}

	acks := &ackSender{conn: conn, wake: make(chan struct{}, 1), done: make(chan struct{})}
	c.wg.Add(1)
	go acks.run(&c.wg)
	defer close(acks.done)

	dec := NewDecoder()
	for {
		typ, payload, err := fr.Next()
		if err != nil {
			if err != io.EOF {
				c.report(fmt.Errorf("netfed: site %s: %w", h.site, err))
			}
			return
		}
		switch typ {
		case MsgBatch:
			base, entries, derr := dec.DecodeBatch(payload)
			if derr != nil {
				c.refuse(conn, derr.Error())
				return
			}
			ackSeq, practice, ferr := c.fold(site, base, entries)
			if ferr != nil {
				c.refuse(conn, ferr.Error())
				return
			}
			c.batches.Add(1)
			if len(practice) > 0 && c.refine != nil {
				c.refine.foldPractice(practice)
			}
			acks.post(ackSeq)
		case MsgError:
			c.report(fmt.Errorf("netfed: site %s: %w", h.site, parseErrorMsg(payload)))
			return
		default:
			c.refuse(conn, fmt.Sprintf("unexpected message type %d", typ))
			return
		}
	}
}

// fold applies one batch to a site's store: entries at or below the
// watermark are duplicates from a retransmit and are skipped; the
// fresh suffix is validated and appended in remote sequence order, so
// the reconstructed log assigns the same sequence numbers the site's
// own log did. A batch starting above the watermark+1 is a protocol
// fault (the client replayed past a gap). Returns the new watermark
// and the practice entries (exception-based allows) for analytics.
func (c *Consolidator) fold(site *siteState, base uint64, entries []audit.Entry) (uint64, []audit.Entry, error) {
	site.mu.Lock()
	defer site.mu.Unlock()
	if base > site.seq+1 {
		return 0, nil, fmt.Errorf("netfed: sequence gap: batch base %d, store at %d", base, site.seq)
	}
	if last := base + uint64(len(entries)) - 1; len(entries) == 0 || last <= site.seq {
		// Entire batch already folded (pure retransmit).
		site.dups += uint64(len(entries))
		c.dups.Add(uint64(len(entries)))
		return site.seq, nil, nil
	}
	fresh := entries[site.seq+1-base:]
	if skipped := len(entries) - len(fresh); skipped > 0 {
		site.dups += uint64(skipped)
		c.dups.Add(uint64(skipped))
	}
	if err := site.log.Append(fresh...); err != nil {
		return 0, nil, fmt.Errorf("netfed: invalid entry in batch: %w", err)
	}
	site.seq += uint64(len(fresh))
	c.entries.Add(uint64(len(fresh)))
	return site.seq, core.Filter(fresh), nil
}

// refuse sends a best-effort error frame and lets the caller close
// the connection.
func (c *Consolidator) refuse(conn net.Conn, msg string) {
	c.report(fmt.Errorf("netfed: refusing connection: %s", msg))
	conn.SetWriteDeadline(time.Now().Add(time.Second))
	conn.Write(AppendFrame(nil, MsgError, []byte(msg)))
}

// report surfaces a per-connection fault.
func (c *Consolidator) report(err error) {
	if c.opts.OnError != nil {
		c.opts.OnError(err)
	}
}

// RunEpoch performs one cross-site refinement epoch: merge every
// site's incremental rule index, measure coverage, mine and prune
// patterns, apply the suspicion reviewer (or AdoptAll when no reject
// threshold is configured), adopt, and re-measure — the federated
// counterpart of core.StreamSession.Run.
func (c *Consolidator) RunEpoch() (core.Round, error) {
	a := c.refine
	if a == nil {
		return core.Round{}, errors.New("netfed: refinement not configured")
	}
	logs := c.siteLogs()
	a.mu.Lock()
	defer a.mu.Unlock()

	round := core.Round{Started: time.Now()}
	groups := audit.MergeGroups(logs...)
	for i := range groups {
		round.Entries += groups[i].Total
		round.Practice += groups[i].Practice
	}
	before, err := core.GroupCoverage(a.cfg.PS, groups, a.cfg.Vocab)
	if err != nil {
		return core.Round{}, err
	}
	round.CoverageBefore = before.Coverage

	patterns, err := core.PatternsFromGroups(groups, a.cfg.Opts)
	if err != nil {
		return core.Round{}, err
	}
	patterns, err = core.Prune(patterns, a.cfg.PS, a.cfg.Vocab)
	if err != nil {
		return core.Round{}, err
	}
	for _, p := range patterns {
		if a.rejected[p.Rule.Key()] {
			continue // previously ruled bad practice cross-site
		}
		round.Patterns = append(round.Patterns, p)
	}

	var reviewer core.Reviewer = core.AdoptAll
	if a.cfg.RejectAt > 0 {
		reviewer = core.SuspicionReviewer(a.practice, a.cfg.InvestigateAt, a.cfg.RejectAt)
	}
	for _, p := range round.Patterns {
		switch reviewer.Review(p) {
		case core.Adopt:
			a.cfg.PS.Add(p.Rule)
			round.Adopted = append(round.Adopted, p.Rule)
		case core.Reject:
			a.rejected[p.Rule.Key()] = true
			round.Rejected = append(round.Rejected, p)
		default:
			round.Investigating = append(round.Investigating, p)
		}
	}

	after, err := core.GroupCoverage(a.cfg.PS, groups, a.cfg.Vocab)
	if err != nil {
		return core.Round{}, err
	}
	round.CoverageAfter = after.Coverage
	a.history = append(a.history, round)
	c.epochs.Add(1)
	return round, nil
}

// History returns the recorded refinement epochs.
func (c *Consolidator) History() []core.Round {
	if c.refine == nil {
		return nil
	}
	c.refine.mu.Lock()
	defer c.refine.mu.Unlock()
	return append([]core.Round(nil), c.refine.history...)
}

// Consolidate builds the consolidated federated view over every
// site's reconstructed log — audit.Federation in sorted site order,
// so the result is comparable byte for byte with an in-process
// federation over the original logs.
func (c *Consolidator) Consolidate() audit.Result {
	return audit.NewFederation(c.siteLogs()...).Consolidate()
}

// ConsolidatorStats is a point-in-time summary.
type ConsolidatorStats struct {
	Sites      int
	Conns      int
	Batches    uint64
	Entries    uint64
	Duplicates uint64
	Epochs     uint64
	SiteSeqs   map[string]uint64
}

// Stats snapshots the consolidator counters.
func (c *Consolidator) Stats() ConsolidatorStats {
	st := ConsolidatorStats{
		Conns:      c.pool.len(),
		Batches:    c.batches.Load(),
		Entries:    c.entries.Load(),
		Duplicates: c.dups.Load(),
		Epochs:     c.epochs.Load(),
		SiteSeqs:   make(map[string]uint64),
	}
	c.mu.Lock()
	st.Sites = len(c.sites)
	sites := make(map[string]*siteState, len(c.sites))
	for name, s := range c.sites {
		sites[name] = s
	}
	c.mu.Unlock()
	for name, s := range sites {
		s.mu.Lock()
		st.SiteSeqs[name] = s.seq
		s.mu.Unlock()
	}
	return st
}

// Close stops accepting, closes every live connection, stops the
// epoch loop, and waits for all handler goroutines to drain.
func (c *Consolidator) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	ln := c.ln
	c.mu.Unlock()
	close(c.stop)
	if ln != nil {
		ln.Close()
	}
	c.pool.closeAll()
	c.wg.Wait()
	return nil
}
