package minidb

import (
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/storage"
)

// selectAll renders every row of a table, in table order, one string
// per row. Used for byte-level differential comparison between the
// in-memory oracle and the file-backed table.
func selectAll(t *testing.T, db *Database, table string) []string {
	t.Helper()
	res, err := db.Exec("SELECT * FROM " + table)
	if err != nil {
		t.Fatalf("SELECT * FROM %s: %v", table, err)
	}
	out := make([]string, len(res.Rows))
	for i := range res.Rows {
		out[i] = strings.Join(res.RowStrings(i), "|")
	}
	return out
}

func sameRows(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func TestStorageClauseParsing(t *testing.T) {
	st, err := Parse(`CREATE TABLE t (a INT, b TEXT) STORAGE file`)
	if err != nil {
		t.Fatalf("parse STORAGE file: %v", err)
	}
	if ct := st.(*CreateTableStmt); ct.Storage != "file" {
		t.Fatalf("Storage = %q, want file", ct.Storage)
	}
	st, err = Parse(`CREATE TABLE t (a INT) STORAGE MEMORY`)
	if err != nil {
		t.Fatalf("parse STORAGE MEMORY: %v", err)
	}
	if ct := st.(*CreateTableStmt); ct.Storage != "memory" {
		t.Fatalf("Storage = %q, want memory", ct.Storage)
	}
	st, err = Parse(`CREATE TABLE t (a INT)`)
	if err != nil {
		t.Fatalf("parse without STORAGE: %v", err)
	}
	if ct := st.(*CreateTableStmt); ct.Storage != "" {
		t.Fatalf("Storage = %q, want empty", ct.Storage)
	}

	// Unknown backend and file-without-AttachStorage are execution
	// errors, not parse errors.
	db := NewDatabase()
	if _, err := db.Exec(`CREATE TABLE t (a INT) STORAGE tape`); err == nil {
		t.Fatal("unknown storage backend accepted")
	}
	if _, err := db.Exec(`CREATE TABLE t (a INT) STORAGE file`); err == nil {
		t.Fatal("STORAGE file without AttachStorage accepted")
	}
	// STORAGE memory is always available.
	if _, err := db.Exec(`CREATE TABLE t (a INT) STORAGE memory`); err != nil {
		t.Fatalf("STORAGE memory: %v", err)
	}
}

func TestRowCodecRoundTrip(t *testing.T) {
	zone := time.FixedZone("", -5*3600)
	rows := [][]Value{
		{Null(), Bool(true), Int(-42), Float(3.25), Text("hello"), Time(time.Date(2026, 3, 1, 8, 0, 0, 123, time.UTC))},
		{Bool(false), Int(0), Float(-0.0), Text(""), Text("emoji éß"), Time(time.Date(2025, 12, 31, 23, 59, 59, 0, zone))},
		{Int(1 << 62), Text(strings.Repeat("x", 300))},
		{},
	}
	for i, row := range rows {
		got, err := decodeRow(encodeRow(nil, row))
		if err != nil {
			t.Fatalf("row %d: decode: %v", i, err)
		}
		if len(got) != len(row) {
			t.Fatalf("row %d: %d values, want %d", i, len(got), len(row))
		}
		for j := range row {
			if got[j].Kind() != row[j].Kind() || got[j].String() != row[j].String() {
				t.Fatalf("row %d col %d: got %v (%v), want %v (%v)",
					i, j, got[j], got[j].Kind(), row[j], row[j].Kind())
			}
		}
	}
	// Zone offset survives: the reloaded Time renders identically.
	orig := Time(time.Date(2026, 1, 2, 3, 4, 5, 0, zone))
	got, err := decodeRow(encodeRow(nil, []Value{orig}))
	if err != nil {
		t.Fatal(err)
	}
	if got[0].String() != orig.String() {
		t.Fatalf("zoned time: got %s, want %s", got[0], orig)
	}

	// Corrupt records error instead of panicking.
	enc := encodeRow(nil, []Value{Int(7), Text("abc")})
	for cut := 1; cut < len(enc); cut++ {
		if _, err := decodeRow(enc[:cut]); err == nil {
			t.Fatalf("truncated record at %d decoded cleanly", cut)
		}
	}
}

func TestSchemaCodecRoundTrip(t *testing.T) {
	cols := []Column{{Name: "id", Type: TypeInt}, {Name: "Name", Type: TypeText}, {Name: "ts", Type: TypeTime}}
	got, err := decodeSchema(encodeSchema(cols))
	if err != nil {
		t.Fatal(err)
	}
	if !sameSchema(got, cols) {
		t.Fatalf("schema round trip: got %v, want %v", got, cols)
	}
	if sameSchema(got, cols[:2]) {
		t.Fatal("sameSchema accepted differing lengths")
	}
}

// durabilityStatements is a mixed workload over one table: inserts,
// point updates, point and range deletes.
func durabilityStatements(n int, seed int64) []string {
	rng := rand.New(rand.NewSource(seed))
	stmts := []string{}
	next := 0
	for len(stmts) < n {
		switch r := rng.Intn(10); {
		case r < 6 || next == 0:
			stmts = append(stmts, fmt.Sprintf(
				`INSERT INTO t (id, name, score, ok) VALUES (%d, 'name-%d', %d.5, %v)`,
				next, next, rng.Intn(100), next%2 == 0))
			next++
		case r < 8:
			stmts = append(stmts, fmt.Sprintf(
				`UPDATE t SET score = %d.25, ok = %v WHERE id = %d`,
				rng.Intn(100), rng.Intn(2) == 0, rng.Intn(next)))
		case r < 9:
			stmts = append(stmts, fmt.Sprintf(`DELETE FROM t WHERE id = %d`, rng.Intn(next)))
		default:
			lo := rng.Intn(next)
			stmts = append(stmts, fmt.Sprintf(`DELETE FROM t WHERE id >= %d AND id < %d`, lo, lo+3))
		}
	}
	return stmts
}

const durabilitySchema = `CREATE TABLE t (id INT, name TEXT, score FLOAT, ok BOOL)`

// TestFileStorageDurability runs the same statement stream against an
// in-memory oracle and a file-backed table, comparing SELECT output
// after every statement, then closes and reopens the file database and
// compares again — the recovered table must be value-identical without
// re-running CREATE TABLE.
func TestFileStorageDurability(t *testing.T) {
	dir := t.TempDir()
	mem := NewDatabase()
	if _, err := mem.Exec(durabilitySchema); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1, CheckpointEvery: 37})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(durabilitySchema + ` STORAGE file`); err != nil {
		t.Fatal(err)
	}
	for i, sql := range durabilityStatements(400, 1) {
		rm, errM := mem.Exec(sql)
		rf, errF := db.Exec(sql)
		if (errM == nil) != (errF == nil) {
			t.Fatalf("stmt %d error divergence: mem=%v file=%v", i, errM, errF)
		}
		if errM == nil && rm.Affected != rf.Affected {
			t.Fatalf("stmt %d affected divergence: mem=%d file=%d", i, rm.Affected, rf.Affected)
		}
		if i%50 == 0 && !sameRows(selectAll(t, mem, "t"), selectAll(t, db, "t")) {
			t.Fatalf("stmt %d: live state diverged", i)
		}
	}
	want := selectAll(t, mem, "t")
	if !sameRows(want, selectAll(t, db, "t")) {
		t.Fatal("final live state diverged")
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: the table comes back from disk, no CREATE needed.
	db2, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.TableNames(); len(got) != 1 || got[0] != "t" {
		t.Fatalf("recovered tables = %v, want [t]", got)
	}
	if got := selectAll(t, db2, "t"); !sameRows(want, got) {
		t.Fatalf("recovered state diverged:\n got %d rows\nwant %d rows", len(got), len(want))
	}
	// Recovered table stays writable and keeps rowids unique: new
	// inserts never collide with recovered rows.
	if _, err := db2.Exec(`INSERT INTO t (id, name, score, ok) VALUES (9999, 'post', 1.5, TRUE)`); err != nil {
		t.Fatal(err)
	}
	if got := selectAll(t, db2, "t"); len(got) != len(want)+1 {
		t.Fatalf("post-recovery insert: %d rows, want %d", len(got), len(want)+1)
	}
}

// TestFileStorageCheckpointReopen exercises the explicit Checkpoint
// path: a checkpoint folds the WAL into the tree and drops every
// closed segment behind it (the active segment survives; its records
// are re-applied idempotently on recovery).
func TestFileStorageCheckpointReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1, CheckpointEvery: -1, SegmentBytes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(durabilitySchema + ` STORAGE file`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if _, err := db.Exec(fmt.Sprintf(
			`INSERT INTO t (id, name, score, ok) VALUES (%d, 'n%d', %d.0, FALSE)`, i, i, i)); err != nil {
			t.Fatal(err)
		}
		if i%10 == 9 {
			// Rolling happens at batch boundaries: flush in small batches
			// so the 512-byte segment budget actually rolls segments.
			if err := db.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	want := selectAll(t, db, "t")
	if err := db.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// The checkpoint dropped every closed segment: only the active one
	// remains, so replay sees a small tail, not the whole history.
	wst, err := storage.Replay(filepath.Join(dir, "t", "wal"), nil, func(uint64, []byte) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if wst.Segments > 1 {
		t.Fatalf("WAL holds %d segments after checkpoint, want at most the active one", wst.Segments)
	}
	if wst.Records >= 100 {
		t.Fatalf("WAL replays %d records after checkpoint, want a short tail", wst.Records)
	}
	db2, err := OpenDatabase(StorageOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := selectAll(t, db2, "t"); !sameRows(want, got) {
		t.Fatal("checkpoint-only recovery diverged")
	}
}

func TestFileStorageDropTableRemovesDir(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE gone (a INT) STORAGE file`); err != nil {
		t.Fatal(err)
	}
	tdir := filepath.Join(dir, "gone")
	if _, err := os.Stat(tdir); err != nil {
		t.Fatalf("table dir missing after create: %v", err)
	}
	if _, err := db.Exec(`DROP TABLE gone`); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(tdir); !os.IsNotExist(err) {
		t.Fatalf("table dir survives DROP TABLE: %v", err)
	}
	// Reopen finds nothing to recover.
	db2, err := OpenDatabase(StorageOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if got := db2.TableNames(); len(got) != 0 {
		t.Fatalf("tables after drop+reopen = %v, want none", got)
	}
}

func TestFileStorageSchemaMismatch(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE t (a INT, b TEXT) STORAGE file`); err != nil {
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	// A different column set against the stored schema is rejected.
	if _, _, _, err := openFileStore(filepath.Join(dir, "t"),
		[]Column{{Name: "a", Type: TypeInt}}, StorageOptions{CommitInterval: -1}.withDefaults()); err == nil {
		t.Fatal("schema mismatch accepted")
	}
	// Case-insensitive match is accepted.
	fs, _, _, err := openFileStore(filepath.Join(dir, "t"),
		[]Column{{Name: "A", Type: TypeInt}, {Name: "B", Type: TypeText}}, StorageOptions{CommitInterval: -1}.withDefaults())
	if err != nil {
		t.Fatalf("case-insensitive schema rejected: %v", err)
	}
	fs.close()
}

// TestFileStorageAbortedCreation plants the wreckage of a crashed
// CREATE TABLE — a store that never reached its creation checkpoint —
// and verifies recovery clears it instead of failing.
func TestFileStorageAbortedCreation(t *testing.T) {
	dir := t.TempDir()
	tdir := filepath.Join(dir, "half")
	if err := os.MkdirAll(tdir, 0o755); err != nil {
		t.Fatal(err)
	}
	st, err := storage.OpenStore(filepath.Join(tdir, "rows.db"), storage.Options{NoSync: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Put([]byte(schemaKey), encodeSchema([]Column{{Name: "a", Type: TypeInt}})); err != nil {
		t.Fatal(err)
	}
	// Close without checkpoint: version stays 0, nothing durable.
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	db, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1})
	if err != nil {
		t.Fatalf("recovery failed on aborted creation: %v", err)
	}
	defer db.Close()
	if got := db.TableNames(); len(got) != 0 {
		t.Fatalf("tables = %v, want none", got)
	}
	if _, err := os.Stat(tdir); !os.IsNotExist(err) {
		t.Fatal("aborted creation dir not cleared")
	}
	// The name is reusable immediately.
	if _, err := db.Exec(`CREATE TABLE half (a INT) STORAGE file`); err != nil {
		t.Fatalf("recreate after aborted creation: %v", err)
	}
}

// TestFileStorageCrashDifferential injects write failures at a random
// byte budget, crashes the database mid-stream, reopens it clean and
// checks the recovered table equals the oracle after some statement
// prefix k — with k at least the last statement acknowledged by Sync.
// Statements are single-row so each is one WAL record (the durability
// unit is the row operation, not the statement).
func TestFileStorageCrashDifferential(t *testing.T) {
	const statements = 120
	for trial := 0; trial < 16; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			dir := t.TempDir()
			budget := storage.NewFailBudget(int64(3000 + trial*1777))
			opts := StorageOptions{
				Dir:             dir,
				CommitInterval:  -1,
				CheckpointEvery: 25,
				OpenFile: func(path string) (storage.File, error) {
					inner, err := storage.OpenOSFile(path)
					if err != nil {
						return nil, err
					}
					return storage.NewFailFileShared(inner, budget), nil
				},
			}
			db, err := OpenDatabase(opts)
			if err != nil {
				t.Skipf("budget exhausted during open: %v", err)
			}
			if _, err := db.Exec(durabilitySchema + ` STORAGE file`); err != nil {
				db.Close()
				t.Skipf("budget exhausted during create: %v", err)
			}

			// Oracle: snapshot of expected rows after each statement.
			mem := NewDatabase()
			if _, err := mem.Exec(durabilitySchema); err != nil {
				t.Fatal(err)
			}
			rng := rand.New(rand.NewSource(int64(trial)))
			snaps := [][]string{selectAll(t, mem, "t")}
			applied, synced := 0, 0
			crashedSQL := ""
			for i := 0; i < statements; i++ {
				var sql string
				switch r := rng.Intn(10); {
				case r < 7 || i == 0:
					sql = fmt.Sprintf(`INSERT INTO t (id, name, score, ok) VALUES (%d, 'n%d', %d.5, %v)`,
						i, i, rng.Intn(50), i%2 == 0)
				case r < 9:
					sql = fmt.Sprintf(`UPDATE t SET score = %d.25 WHERE id = %d`, rng.Intn(50), rng.Intn(i))
				default:
					sql = fmt.Sprintf(`DELETE FROM t WHERE id = %d`, rng.Intn(i))
				}
				if _, err := db.Exec(sql); err != nil {
					crashedSQL = sql
					break // crashed mid-statement
				}
				if _, err := mem.Exec(sql); err != nil {
					t.Fatalf("oracle rejected %q: %v", sql, err)
				}
				applied++
				snaps = append(snaps, selectAll(t, mem, "t"))
				if i%17 == 16 {
					if err := db.Sync(); err != nil {
						break
					}
					synced = applied
				}
			}
			db.Close() // errors expected; the crash already happened

			// The crashed statement's WAL record can be durable even
			// though the statement errored (write-ahead order), so its
			// effect is an acceptable recovery outcome too.
			if crashedSQL != "" {
				if _, err := mem.Exec(crashedSQL); err == nil {
					snaps = append(snaps, selectAll(t, mem, "t"))
				}
			}

			if !budget.Failed() {
				// Budget larger than the whole run: full equality.
				db2, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1})
				if err != nil {
					t.Fatalf("clean reopen: %v", err)
				}
				defer db2.Close()
				if got := selectAll(t, db2, "t"); !sameRows(snaps[applied], got) {
					t.Fatalf("no-crash reopen diverged at %d statements", applied)
				}
				return
			}

			db2, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: -1})
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer db2.Close()
			got := selectAll(t, db2, "t")
			k := -1
			for i := synced; i < len(snaps); i++ {
				if sameRows(snaps[i], got) {
					k = i
					break
				}
			}
			if k < 0 {
				t.Fatalf("recovered state (%d rows) matches no statement prefix in [%d, %d]",
					len(got), synced, len(snaps)-1)
			}
			// Recovered database stays writable.
			if _, err := db2.Exec(`INSERT INTO t (id, name, score, ok) VALUES (7777, 'post', 0.5, TRUE)`); err != nil {
				t.Fatalf("post-recovery insert: %v", err)
			}
		})
	}
}

// TestFileStorageConcurrentInserts hammers one file-backed table from
// several goroutines (race detector food: the rowStore is confined
// under the table lock) and verifies the recovered row count.
func TestFileStorageConcurrentInserts(t *testing.T) {
	dir := t.TempDir()
	db, err := OpenDatabase(StorageOptions{Dir: dir, CommitInterval: time.Millisecond, NoSync: true, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.Exec(`CREATE TABLE c (w INT, seq INT) STORAGE file`); err != nil {
		t.Fatal(err)
	}
	const workers, each = 4, 100
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := db.Exec(fmt.Sprintf(`INSERT INTO c (w, seq) VALUES (%d, %d)`, w, i)); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	want := selectAll(t, db, "c")
	if len(want) != workers*each {
		t.Fatalf("live rows = %d, want %d", len(want), workers*each)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := OpenDatabase(StorageOptions{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	got := selectAll(t, db2, "c")
	if len(got) != workers*each {
		t.Fatalf("recovered rows = %d, want %d", len(got), workers*each)
	}
	// Same multiset: insertion interleaving is racy but every insert
	// must survive exactly once. Rowid order is insert order, so the
	// recovered sequence must match the pre-close table order exactly.
	if !sameRows(want, got) {
		t.Fatal("recovered order diverged from insert order")
	}
}

// blockableFile fails every write while armed, leaving reads (and the
// setup phase) untouched.
type blockableFile struct {
	storage.File
	fail *atomic.Bool
}

func (f *blockableFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fail.Load() {
		return 0, fmt.Errorf("minidb test: injected write failure")
	}
	return f.File.WriteAt(p, off)
}

// TestUpdateStorageErrorAtomic: a storage failure mid-UPDATE must
// reject the statement whole — the in-memory table keeps every
// pre-statement row, matching the delete path's write-ahead ordering,
// instead of applying a prefix of the matched rows.
func TestUpdateStorageErrorAtomic(t *testing.T) {
	var failWrites atomic.Bool
	db, err := OpenDatabase(StorageOptions{
		Dir:             t.TempDir(),
		CheckpointEvery: 8, // trip a (failing) auto-checkpoint mid-statement
		NoSync:          true,
		OpenFile: func(path string) (storage.File, error) {
			inner, err := storage.OpenOSFile(path)
			if err != nil {
				return nil, err
			}
			return &blockableFile{File: inner, fail: &failWrites}, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.Exec(`CREATE TABLE t (a INT, b TEXT) STORAGE file`); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if _, err := db.Exec(fmt.Sprintf(`INSERT INTO t VALUES (%d, 'v%d')`, i, i)); err != nil {
			t.Fatal(err)
		}
	}
	before := selectAll(t, db, "t")

	failWrites.Store(true)
	if _, err := db.Exec(`UPDATE t SET b = 'changed'`); err == nil {
		t.Fatal("UPDATE over failing storage reported success")
	}
	failWrites.Store(false)
	if got := selectAll(t, db, "t"); !sameRows(got, before) {
		t.Fatalf("mid-statement storage failure left a partially applied UPDATE:\ngot  %v\nwant %v", got, before)
	}
}
