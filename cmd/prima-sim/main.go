// Command prima-sim runs the clinical workflow simulator with a
// PRIMA refinement loop: it simulates epochs of hospital activity,
// refines the policy between epochs, and reports the coverage series
// (the quantitative version of the paper's Figure 2), extraction
// quality against ground truth, and optionally the raw audit log.
//
// Usage:
//
//	prima-sim [-seed 42] [-epochs 6] [-days 15] [-support 5] [-users 2]
//	          [-out audit.jsonl] [-policy-out refined.policy]
package main

import (
	"flag"
	"fmt"
	"os"

	prima "repro"
	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/workflow"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "prima-sim:", err)
		os.Exit(1)
	}
}

// runSweep measures extraction precision/recall as the threshold
// frequency f and distinct-user condition vary over one training
// window (experiment E5).
func runSweep(seed int64, days int) error {
	cfg := workflow.DefaultHospital(seed)
	sim, err := workflow.New(cfg)
	if err != nil {
		return err
	}
	entries, err := sim.Run(0, days)
	if err != nil {
		return err
	}
	informal, violations := sim.GroundTruth()
	st := audit.Summarize(entries)
	fmt.Printf("threshold sweep over %d days (%d entries, %d exceptions, seed %d)\n",
		days, st.Total, st.Exceptions, seed)
	fmt.Println("f,min_users,patterns,precision,recall")
	for _, f := range []int{1, 2, 5, 10, 20, 50, 100, 200, 400, 800} {
		for _, u := range []int{1, 2, 3} {
			pats, err := core.Refinement(cfg.Policy, entries, cfg.Vocab, core.Options{
				MinSupport: f, MinDistinctUsers: u, Extractor: core.NativeExtractor{},
			})
			if err != nil {
				return err
			}
			var found []prima.Rule
			for _, p := range pats {
				found = append(found, p.Rule)
			}
			sc := workflow.Evaluate(found, informal, violations)
			fmt.Printf("%d,%d,%d,%.3f,%.3f\n", f, u, len(pats), sc.Precision, sc.Recall)
		}
	}
	return nil
}

func run(args []string) error {
	fs := flag.NewFlagSet("prima-sim", flag.ContinueOnError)
	seed := fs.Int64("seed", 42, "simulation seed")
	epochs := fs.Int("epochs", 6, "number of training epochs")
	days := fs.Int("days", 15, "days per epoch")
	support := fs.Int("support", 5, "threshold frequency f")
	users := fs.Int("users", 2, "minimum distinct users")
	out := fs.String("out", "", "write the full audit log (JSONL) to this file")
	policyOut := fs.String("policy-out", "", "write the refined policy to this file")
	sweep := fs.Bool("sweep", false, "run the threshold sensitivity sweep (E5) instead of the epoch loop")
	suspicion := fs.Bool("suspicion", false, "review patterns with the behavioural suspicion scorer instead of adopting all")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *sweep {
		return runSweep(*seed, *days**epochs)
	}

	cfg := workflow.DefaultHospital(*seed)
	sim, err := workflow.New(cfg)
	if err != nil {
		return err
	}
	sess := core.NewSession(cfg.Policy, cfg.Vocab, core.Options{
		MinSupport:       *support,
		MinDistinctUsers: *users,
	})

	fmt.Printf("PRIMA refinement loop: %d epochs x %d days, seed %d\n", *epochs, *days, *seed)
	fmt.Println("epoch,entries,exceptions,coverage_before,coverage_after,adopted")

	var full []audit.Entry
	var adoptedTotal int
	for epoch := 0; epoch < *epochs; epoch++ {
		entries, err := sim.Run(epoch**days, *days)
		if err != nil {
			return err
		}
		full = append(full, entries...)
		reviewer := core.Reviewer(core.AdoptAll)
		if *suspicion {
			reviewer = core.SuspicionReviewer(core.Filter(entries), 0.5, 0.85)
		}
		round, err := sess.Run(entries, reviewer)
		if err != nil {
			return err
		}
		adoptedTotal += len(round.Adopted)
		st := audit.Summarize(entries)
		fmt.Printf("%d,%d,%d,%.4f,%.4f,%d\n",
			epoch+1, st.Total, st.Exceptions, round.CoverageBefore, round.CoverageAfter, len(round.Adopted))
	}

	// Score the adopted rules against ground truth.
	var adopted []prima.Rule
	for _, round := range sess.History {
		adopted = append(adopted, round.Adopted...)
	}
	informal, violations := sim.GroundTruth()
	sc := workflow.Evaluate(adopted, informal, violations)
	fmt.Printf("adopted %d rules; extraction precision %.2f, recall %.2f (ground truth: %d informal, %d violations)\n",
		adoptedTotal, sc.Precision, sc.Recall, len(informal), len(violations))

	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := audit.WriteJSONL(f, full); err != nil {
			return err
		}
		fmt.Printf("audit log (%d entries) written to %s\n", len(full), *out)
	}
	if *policyOut != "" {
		f, err := os.Create(*policyOut)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := cfg.Policy.WriteText(f); err != nil {
			return err
		}
		fmt.Printf("refined policy (%d rules) written to %s\n", cfg.Policy.Len(), *policyOut)
	}
	return nil
}
