package storage

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

func TestWALAppendCommitReplay(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{CommitInterval: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	var last uint64
	for i := 0; i < n; i++ {
		lsn, err := w.Append([]byte(fmt.Sprintf("record-%04d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if lsn != uint64(i+1) {
			t.Fatalf("lsn %d for record %d", lsn, i)
		}
		last = lsn
	}
	if err := w.Commit(last); err != nil {
		t.Fatal(err)
	}
	if w.DurableLSN() < last {
		t.Fatalf("durable %d < %d", w.DurableLSN(), last)
	}
	if w.Syncs() >= n {
		t.Fatalf("group commit did no batching: %d fsyncs for %d records", w.Syncs(), n)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	var got []string
	st, err := Replay(dir, nil, func(lsn uint64, p []byte) error {
		if lsn != uint64(len(got)+1) {
			return fmt.Errorf("lsn %d out of order", lsn)
		}
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.Records != n || st.TornTail {
		t.Fatalf("replay stats %+v", st)
	}
	for i, s := range got {
		if s != fmt.Sprintf("record-%04d", i) {
			t.Fatalf("record %d = %q", i, s)
		}
	}
}

func TestWALSegmentRollAndTruncate(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{SegmentBytes: 4096, CommitInterval: -1})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{'r'}, 256)
	var last uint64
	for i := 0; i < 200; i++ {
		last, err = w.Append(payload)
		if err != nil {
			t.Fatal(err)
		}
		// Commit each record so batches stay small and rolling happens
		// at many boundaries.
		if err := w.Commit(last); err != nil {
			t.Fatal(err)
		}
	}
	segs, err := listSegments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("expected several segments, got %d", len(segs))
	}
	// Truncate everything strictly below the midpoint LSN.
	mid := last / 2
	if err := w.TruncateBefore(mid); err != nil {
		t.Fatal(err)
	}
	segsAfter, _ := listSegments(dir)
	if len(segsAfter) >= len(segs) {
		t.Fatalf("truncation removed nothing: %d -> %d", len(segs), len(segsAfter))
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Replay must yield a contiguous LSN suffix that covers mid..last.
	var first, count uint64
	_, err = Replay(dir, nil, func(lsn uint64, p []byte) error {
		if first == 0 {
			first = lsn
		}
		count++
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if first == 0 || first > mid {
		t.Fatalf("replay starts at %d, want <= %d", first, mid)
	}
	if first+count-1 != last {
		t.Fatalf("replay ends at %d, want %d", first+count-1, last)
	}
}

func TestWALReopenContinuesLSN(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir, WALOptions{})
	for i := 0; i < 10; i++ {
		w.Append([]byte("a"))
	}
	w.Sync()
	w.Close()
	w2, err := OpenWAL(dir, WALOptions{})
	if err != nil {
		t.Fatal(err)
	}
	lsn, _ := w2.Append([]byte("b"))
	if lsn != 11 {
		t.Fatalf("lsn after reopen = %d, want 11", lsn)
	}
	w2.Sync()
	w2.Close()
	var n int
	st, err := Replay(dir, nil, func(lsn uint64, p []byte) error { n++; return nil })
	if err != nil || n != 11 || st.LastLSN != 11 {
		t.Fatalf("replay n=%d st=%+v err=%v", n, st, err)
	}
}

// TestWALTornTail appends, then chops the last segment at arbitrary
// byte offsets: replay must recover the longest valid prefix and flag
// the torn tail, and reopen must truncate and continue cleanly.
func TestWALTornTail(t *testing.T) {
	// Each record frames to 14 bytes; chops below that tear exactly the
	// final record.
	for _, chop := range []int64{1, 3, 7, 9, 13} {
		dir := t.TempDir()
		w, _ := OpenWAL(dir, WALOptions{})
		for i := 0; i < 50; i++ {
			w.Append([]byte(fmt.Sprintf("rec-%02d", i)))
		}
		w.Sync()
		w.Close()
		segs, _ := listSegments(dir)
		segPath := segs[len(segs)-1].path
		fi, err := os.Stat(segPath)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.Truncate(segPath, fi.Size()-chop); err != nil {
			t.Fatal(err)
		}
		var n int
		st, err := Replay(dir, nil, func(lsn uint64, p []byte) error { n++; return nil })
		if err != nil {
			t.Fatalf("chop %d: replay error %v", chop, err)
		}
		if !st.TornTail {
			t.Fatalf("chop %d: torn tail not detected", chop)
		}
		if n != 49 {
			t.Fatalf("chop %d: replayed %d records, want 49", chop, n)
		}
		// Reopen appends after the valid prefix.
		w2, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			t.Fatalf("chop %d: reopen: %v", chop, err)
		}
		lsn, _ := w2.Append([]byte("after-crash"))
		if lsn != 50 {
			t.Fatalf("chop %d: lsn after torn reopen = %d, want 50", chop, lsn)
		}
		w2.Sync()
		w2.Close()
		n = 0
		st, err = Replay(dir, nil, func(lsn uint64, p []byte) error { n++; return nil })
		if err != nil || n != 50 || st.TornTail {
			t.Fatalf("chop %d: post-recovery replay n=%d st=%+v err=%v", chop, n, st, err)
		}
	}
}

// TestWALCRCCorruption flips payload bytes mid-stream: corruption in a
// non-final segment must fail replay loudly, not silently skip.
func TestWALCRCCorruption(t *testing.T) {
	dir := t.TempDir()
	w, _ := OpenWAL(dir, WALOptions{SegmentBytes: 2048, CommitInterval: -1})
	for i := 0; i < 100; i++ {
		w.Append(bytes.Repeat([]byte{'x'}, 128))
		w.Sync()
	}
	w.Close()
	segs, _ := listSegments(dir)
	if len(segs) < 2 {
		t.Fatalf("need multiple segments, got %d", len(segs))
	}
	raw, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	raw[walHeaderSize+walFrameHead+5] ^= 0xff
	os.WriteFile(segs[0].path, raw, 0o644)
	_, err = Replay(dir, nil, func(lsn uint64, p []byte) error { return nil })
	if err == nil {
		t.Fatal("mid-stream corruption replayed without error")
	}
}

// TestWALCrashInjection tears the write stream at random offsets via
// the failpoint file: replay must always recover a clean prefix of
// what was appended, never garbage.
func TestWALCrashInjection(t *testing.T) {
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		budget := int64(100 + trial*137)
		var mu sync.Mutex
		var files []*FailFile
		remaining := budget
		open := func(p string) (File, error) {
			inner, err := OpenOSFile(p)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			ff := NewFailFile(inner, remaining)
			files = append(files, ff)
			mu.Unlock()
			return ff, nil
		}
		w, err := OpenWAL(dir, WALOptions{CommitInterval: -1, OpenFile: open})
		if err != nil {
			continue // crashed during segment creation: nothing to check
		}
		for i := 0; i < 200; i++ {
			if _, err := w.Append([]byte(fmt.Sprintf("payload-%03d", i))); err != nil {
				break
			}
			if err := w.Sync(); err != nil {
				break
			}
		}
		w.Close()

		var n int
		st, err := Replay(dir, nil, func(lsn uint64, p []byte) error {
			want := fmt.Sprintf("payload-%03d", int(lsn-1))
			if string(p) != want {
				return fmt.Errorf("lsn %d: %q != %q", lsn, p, want)
			}
			n++
			return nil
		})
		if err != nil {
			t.Fatalf("trial %d (budget %d): replay: %v (stats %+v)", trial, budget, err, st)
		}
		if n > 200 {
			t.Fatalf("trial %d: replayed %d > appended", trial, n)
		}
	}
}

func TestWALConcurrentCommit(t *testing.T) {
	dir := t.TempDir()
	w, err := OpenWAL(dir, WALOptions{CommitInterval: 500 * time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	const writers, per = 8, 100
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				lsn, err := w.Append([]byte(fmt.Sprintf("w%d-%d", g, i)))
				if err != nil {
					t.Error(err)
					return
				}
				if err := w.Commit(lsn); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	syncs := w.Syncs()
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if syncs >= writers*per {
		t.Fatalf("no group commit: %d fsyncs for %d commits", syncs, writers*per)
	}
	var n int
	_, err = Replay(dir, nil, func(lsn uint64, p []byte) error { n++; return nil })
	if err != nil || n != writers*per {
		t.Fatalf("replay n=%d err=%v", n, err)
	}
}

// FuzzWALReplay feeds arbitrary bytes as a segment file: replay must
// never panic, and must never deliver a record that was not framed
// with a valid CRC.
func FuzzWALReplay(f *testing.F) {
	// Seed with a genuine segment.
	dir := f.TempDir()
	w, _ := OpenWAL(dir, WALOptions{})
	w.Append([]byte("seed-record-one"))
	w.Append([]byte("seed-record-two"))
	w.Sync()
	w.Close()
	segs, _ := listSegments(dir)
	raw, _ := os.ReadFile(segs[0].path)
	f.Add(raw)
	f.Add(raw[:len(raw)-3])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, 64))

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segmentPath("", 1)), data, 0o644); err != nil {
			t.Skip()
		}
		st, err := Replay(dir, nil, func(lsn uint64, p []byte) error { return nil })
		if err == nil && st.Records > 0 && st.FirstLSN == 0 {
			t.Fatalf("records without first LSN: %+v", st)
		}
		// Reopen over the same bytes must also never panic, and the
		// reopened log must accept an append + replay round trip.
		w, err := OpenWAL(dir, WALOptions{})
		if err != nil {
			return
		}
		if _, err := w.Append([]byte("post")); err == nil {
			w.Sync()
		}
		w.Close()
		Replay(dir, nil, func(lsn uint64, p []byte) error { return nil })
	})
}
