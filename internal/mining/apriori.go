// Package mining implements frequent-itemset and association-rule
// mining for PRIMA's §5 data-analysis upgrade: the Apriori algorithm
// of Agrawal & Srikant (VLDB 1994, the paper's reference [18]) as the
// reference oracle, and an FP-growth engine (fpgrowth.go) for audit
// scale. §5 proposes itemset mining to detect correlations between
// attribute pairs "that are not discovered by simple SQL queries":
// the exact GROUP BY of Algorithm 5 only finds full-width rules,
// while frequent sub-rules (e.g. every purpose under which a role
// touches one data category) need the itemset lattice.
//
// Both engines run over interned integer item ids and a weighted
// distinct-transaction table (intern.go), so the normalized key of
// each item is computed once per mining run instead of twice per
// comparison, and repeated audit projections collapse into one
// weighted row.
package mining

import (
	"fmt"
	"sort"
	"strings"
)

// Item is one attribute=value element of a transaction.
type Item struct {
	Attr  string
	Value string
}

// String renders the item.
func (it Item) String() string { return it.Attr + "=" + it.Value }

func (it Item) key() string {
	return strings.ToLower(it.Attr) + "=" + strings.ToLower(it.Value)
}

// Itemset is a set of items, kept sorted by key.
type Itemset []Item

// NewItemset builds a normalized itemset (sorted, deduplicated; the
// last spelling of a duplicated key wins). Keys are computed once per
// item, not per comparison.
func NewItemset(items ...Item) Itemset {
	type keyed struct {
		key string
		it  Item
	}
	ks := make([]keyed, 0, len(items))
	idx := make(map[string]int, len(items))
	for _, it := range items {
		k := it.key()
		if i, ok := idx[k]; ok {
			ks[i].it = it
			continue
		}
		idx[k] = len(ks)
		ks = append(ks, keyed{key: k, it: it})
	}
	sort.Slice(ks, func(i, j int) bool { return ks[i].key < ks[j].key })
	out := make(Itemset, len(ks))
	for i, k := range ks {
		out[i] = k.it
	}
	return out
}

// Key returns the canonical identity of the itemset.
func (s Itemset) Key() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.key()
	}
	return strings.Join(parts, "&")
}

// String renders the itemset.
func (s Itemset) String() string {
	parts := make([]string, len(s))
	for i, it := range s {
		parts[i] = it.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// Contains reports whether s contains every item of sub.
func (s Itemset) Contains(sub Itemset) bool {
	i := 0
	for _, it := range sub {
		k := it.key()
		for {
			if i >= len(s) {
				return false
			}
			sk := s[i].key()
			if sk < k {
				i++
				continue
			}
			if sk != k {
				return false
			}
			break
		}
	}
	return true
}

// Transaction is one basket of items (one audit row in PRIMA's use).
type Transaction = Itemset

// Frequent is an itemset with its absolute support count.
type Frequent struct {
	Items   Itemset
	Support int
}

// Result holds the mining output, grouped by itemset size.
type Result struct {
	Transactions int
	MinSupport   int
	Frequent     []Frequent // all frequent itemsets, size-then-key order
}

// Lookup returns the support of the given itemset, 0 if infrequent.
func (r *Result) Lookup(s Itemset) int {
	key := s.Key()
	for _, f := range r.Frequent {
		if f.Items.Key() == key {
			return f.Support
		}
	}
	return 0
}

// OfSize returns the frequent itemsets with exactly k items.
func (r *Result) OfSize(k int) []Frequent {
	var out []Frequent
	for _, f := range r.Frequent {
		if len(f.Items) == k {
			out = append(out, f)
		}
	}
	return out
}

// Miner is a frequent-itemset mining engine. Apriori and FP-growth
// both satisfy it and are differentially tested to produce identical
// Results on every input.
type Miner interface {
	Mine(txs []Transaction, minSupport int) (*Result, error)
}

// AprioriMiner is the levelwise generate-and-test engine behind the
// Apriori function, as a Miner.
type AprioriMiner struct{}

// Mine implements Miner.
func (AprioriMiner) Mine(txs []Transaction, minSupport int) (*Result, error) {
	return Apriori(txs, minSupport)
}

// Apriori mines all itemsets with support >= minSupport (absolute
// count). It is the levelwise algorithm of Agrawal & Srikant: L1 from
// a scan, then candidate generation by joining L(k-1) with itself,
// pruning candidates with any infrequent (k-1)-subset, and a support
// scan per level — run over interned ids and weighted distinct
// transactions. It is kept as the reference oracle for FP-growth.
func Apriori(txs []Transaction, minSupport int) (*Result, error) {
	if minSupport < 1 {
		return nil, errMinSupport(minSupport)
	}
	t := newTxTable(1, false)
	for _, tx := range txs {
		t.foldTx(tx)
	}
	return finishResult(t, aprioriMine(t, minSupport), len(txs), minSupport), nil
}

// aprioriMine is the levelwise engine over a weighted transaction
// table. It works in "rank" space — ids renumbered so rank order
// equals key order — which makes the sorted-level prefix join and the
// subset tests pure integer comparisons.
func aprioriMine(t *txTable, minSupport int) []mined {
	n := t.in.size()
	if n == 0 {
		return nil
	}
	// Rank permutation: rank order == normalized key order.
	rank2id := make([]int32, n)
	for i := range rank2id {
		rank2id[i] = int32(i)
	}
	sort.Slice(rank2id, func(i, j int) bool { return t.in.keys[rank2id[i]] < t.in.keys[rank2id[j]] })
	id2rank := make([]int32, n)
	for r, id := range rank2id {
		id2rank[id] = int32(r)
	}

	// Rank-space copies of the distinct transactions.
	type wset struct {
		set []int32
		w   int
	}
	var rsets []wset
	counts := make([]int, n)
	for s := range t.shards {
		sh := &t.shards[s]
		for r, set := range sh.sets {
			rs := make([]int32, len(set))
			for i, id := range set {
				rs[i] = id2rank[id]
			}
			sortIDs(rs)
			rsets = append(rsets, wset{set: rs, w: sh.weight[r]})
			for _, rk := range rs {
				counts[rk] += sh.weight[r]
			}
		}
	}

	emit := func(out []mined, ranks []int32, support int) []mined {
		ids := make([]int32, len(ranks))
		for i, rk := range ranks {
			ids[i] = rank2id[rk]
		}
		sortIDs(ids)
		return append(out, mined{ids: ids, support: support})
	}

	var out []mined
	var level [][]int32
	for rk := 0; rk < n; rk++ {
		if counts[rk] >= minSupport {
			level = append(level, []int32{int32(rk)})
			out = emit(out, level[len(level)-1], counts[rk])
		}
	}

	for len(level) > 0 {
		candidates := generateCandidates(level)
		if len(candidates) == 0 {
			break
		}
		supp := make([]int, len(candidates))
		for _, ws := range rsets {
			for i, c := range candidates {
				if containsIDs(ws.set, c) {
					supp[i] += ws.w
				}
			}
		}
		var next [][]int32
		for i, c := range candidates {
			if supp[i] >= minSupport {
				next = append(next, c)
				out = emit(out, c, supp[i])
			}
		}
		level = next
	}
	return out
}

// generateCandidates joins each pair of k-sets sharing their first
// k-1 ranks, then prunes candidates with an infrequent subset
// (the Apriori downward-closure property). The level is sorted
// lexicographically, so same-prefix sets are contiguous.
func generateCandidates(level [][]int32) [][]int32 {
	freq := make(map[string]bool, len(level))
	var buf []byte
	for _, s := range level {
		buf = packIDs(buf, s)
		freq[string(buf)] = true
	}
	k := len(level[0])
	var out [][]int32
	sub := make([]int32, k)
	for i := 0; i < len(level); i++ {
		for j := i + 1; j < len(level); j++ {
			a, b := level[i], level[j]
			if !samePrefix(a, b, k-1) {
				break // level is sorted; prefixes diverge from here on
			}
			cand := make([]int32, k+1)
			copy(cand, a)
			cand[k] = b[k-1]
			if !allSubsetsFrequent(cand, sub, freq, &buf) {
				continue
			}
			out = append(out, cand)
		}
	}
	return out
}

func samePrefix(a, b []int32, n int) bool {
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// allSubsetsFrequent applies the Apriori pruning property: every
// k-subset of a (k+1)-candidate must be frequent.
func allSubsetsFrequent(cand, sub []int32, freq map[string]bool, buf *[]byte) bool {
	for skip := range cand {
		sub = sub[:0]
		sub = append(sub, cand[:skip]...)
		sub = append(sub, cand[skip+1:]...)
		*buf = packIDs(*buf, sub)
		if !freq[string(*buf)] {
			return false
		}
	}
	return true
}

// Rule is an association rule X => Y with its metrics.
type Rule struct {
	Antecedent Itemset
	Consequent Itemset
	Support    int     // support of X ∪ Y
	Confidence float64 // support(X ∪ Y) / support(X)
}

// String renders the rule.
func (r Rule) String() string {
	return fmt.Sprintf("%s => %s (support %d, confidence %.2f)", r.Antecedent, r.Consequent, r.Support, r.Confidence)
}

// AssociationRules derives all rules X => Y (Y a single item, the
// common special case) with confidence >= minConfidence from the
// mining result.
func AssociationRules(res *Result, minConfidence float64) ([]Rule, error) {
	if minConfidence <= 0 || minConfidence > 1 {
		return nil, fmt.Errorf("mining: minConfidence must be in (0, 1], got %v", minConfidence)
	}
	support := make(map[string]int, len(res.Frequent))
	for _, f := range res.Frequent {
		support[f.Items.Key()] = f.Support
	}
	var rules []Rule
	for _, f := range res.Frequent {
		if len(f.Items) < 2 {
			continue
		}
		for skip := range f.Items {
			ante := make(Itemset, 0, len(f.Items)-1)
			ante = append(ante, f.Items[:skip]...)
			ante = append(ante, f.Items[skip+1:]...)
			anteSupp := support[ante.Key()]
			if anteSupp == 0 {
				continue
			}
			conf := float64(f.Support) / float64(anteSupp)
			if conf >= minConfidence {
				rules = append(rules, Rule{
					Antecedent: ante,
					Consequent: Itemset{f.Items[skip]},
					Support:    f.Support,
					Confidence: conf,
				})
			}
		}
	}
	sort.Slice(rules, func(i, j int) bool {
		if rules[i].Confidence != rules[j].Confidence {
			return rules[i].Confidence > rules[j].Confidence
		}
		if rules[i].Support != rules[j].Support {
			return rules[i].Support > rules[j].Support
		}
		return rules[i].Antecedent.Key()+rules[i].Consequent.Key() < rules[j].Antecedent.Key()+rules[j].Consequent.Key()
	})
	return rules, nil
}
