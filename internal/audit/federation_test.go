package audit

import (
	"math/rand"
	"testing"
	"time"
)

func mkLog(t *testing.T, site string, entries ...Entry) *Log {
	t.Helper()
	l := NewLog(site)
	if err := l.Append(entries...); err != nil {
		t.Fatal(err)
	}
	return l
}

func TestConsolidateMergesChronologically(t *testing.T) {
	a := mkLog(t, "a",
		entry(t0.Add(2*time.Hour), "u1", "d", "p", "r", Regular),
		entry(t0, "u2", "d", "p", "r", Regular),
	)
	b := mkLog(t, "b",
		entry(t0.Add(time.Hour), "u3", "d", "p", "r", Regular),
	)
	res := NewFederation(a, b).Consolidate()
	if len(res.Entries) != 3 {
		t.Fatalf("got %d entries", len(res.Entries))
	}
	for i := 1; i < len(res.Entries); i++ {
		if res.Entries[i].Time.Before(res.Entries[i-1].Time) {
			t.Fatalf("not chronological: %v", res.Entries)
		}
	}
	if res.Entries[0].User != "u2" || res.Entries[1].User != "u3" || res.Entries[2].User != "u1" {
		t.Errorf("order: %v", res.Entries)
	}
}

func TestConsolidateDeduplicatesReplicas(t *testing.T) {
	// The same event replicated to two site logs counts once.
	e := entry(t0, "u", "referral", "treatment", "nurse", Regular)
	a := mkLog(t, "a", e)
	eb := e
	eb.Site = "a" // replica carries the original site
	b := NewLog("b")
	if err := b.Append(eb); err != nil {
		t.Fatal(err)
	}
	res := NewFederation(a, b).Consolidate()
	if len(res.Entries) != 1 || res.Duplicates != 1 {
		t.Errorf("entries=%d duplicates=%d", len(res.Entries), res.Duplicates)
	}
}

func TestConsolidateReportsConflicts(t *testing.T) {
	// Same instant, actor and object but disagreeing outcome.
	ea := entry(t0, "u", "referral", "treatment", "nurse", Regular)
	eb := ea
	eb.Op = Deny
	res := NewFederation(mkLog(t, "a", ea), mkLog(t, "b", eb)).Consolidate()
	if len(res.Conflicts) != 1 {
		t.Fatalf("conflicts = %v", res.Conflicts)
	}
	if len(res.Entries) != 2 {
		t.Errorf("conflicting entries must both be kept: %v", res.Entries)
	}
	if s := res.Conflicts[0].String(); s == "" {
		t.Error("empty conflict string")
	}
}

func TestConsolidateOrderInsensitive(t *testing.T) {
	// Property: the consolidated view does not depend on how entries
	// were distributed across sites or ordered within a site.
	rng := rand.New(rand.NewSource(42))
	var all []Entry
	for i := 0; i < 40; i++ {
		all = append(all, entry(t0.Add(time.Duration(i)*time.Minute), "u", "d", "p", "r", Regular))
	}
	split := func(nSites int, shuffle bool) []Entry {
		logs := make([]*Log, nSites)
		for i := range logs {
			logs[i] = NewLog("s")
		}
		es := append([]Entry(nil), all...)
		if shuffle {
			rng.Shuffle(len(es), func(i, j int) { es[i], es[j] = es[j], es[i] })
		}
		for i, e := range es {
			if err := logs[i%nSites].Append(e); err != nil {
				t.Fatal(err)
			}
		}
		return NewFederation(logs...).Consolidate().Entries
	}
	ref := split(1, false)
	for _, n := range []int{2, 3, 5} {
		got := split(n, true)
		if len(got) != len(ref) {
			t.Fatalf("nSites=%d: %d entries, want %d", n, len(got), len(ref))
		}
		for i := range ref {
			if !got[i].Time.Equal(ref[i].Time) {
				t.Fatalf("nSites=%d: order diverges at %d", n, i)
			}
		}
	}
}

func TestConsolidateLogAndHelpers(t *testing.T) {
	a := mkLog(t, "a", entry(t0, "u1", "d", "p", "r", Regular))
	b := mkLog(t, "b", entry(t0.Add(time.Minute), "u2", "d", "p", "r", Exception))
	fed := NewFederation(a)
	fed.AddSource(b)
	if fed.Sources() != 2 {
		t.Fatalf("Sources = %d", fed.Sources())
	}
	l, res := fed.ConsolidateLog("hq")
	if l.Site() != "hq" || l.Len() != 2 || len(res.Entries) != 2 {
		t.Errorf("consolidated log: %v %v", l, res)
	}
	sites := Sites(l.Snapshot())
	if len(sites) != 2 || sites[0] != "a" || sites[1] != "b" {
		t.Errorf("Sites = %v", sites)
	}
	groups := BySite(l.Snapshot())
	if len(groups["a"]) != 1 || len(groups["b"]) != 1 {
		t.Errorf("BySite = %v", groups)
	}
}

func TestConsolidateEmptyFederation(t *testing.T) {
	res := NewFederation().Consolidate()
	if len(res.Entries) != 0 || res.Duplicates != 0 || len(res.Conflicts) != 0 {
		t.Errorf("empty federation: %+v", res)
	}
}
