package core

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/scenario"
)

// patternSig flattens a pattern list into a comparable signature
// including order — the byte-identical bar for the streaming path.
func patternSig(t *testing.T, ps []Pattern) []string {
	t.Helper()
	out := make([]string, 0, len(ps))
	for _, p := range ps {
		out = append(out, fmt.Sprintf("%s|%s|%d|%d|%d|%d",
			p.Rule.Key(), p.Rule.Compact(),
			p.FirstSeen.UnixNano(), p.LastSeen.UnixNano(),
			p.Support, p.DistinctUsers))
	}
	return out
}

// TestPatternsFromGroupsMatchesSQLExtractor is the core differential:
// the index-served analysis must reproduce the SQL extractor
// byte-for-byte on the Table 1 walk-through, across threshold and
// comparator variants.
func TestPatternsFromGroupsMatchesSQLExtractor(t *testing.T) {
	l := audit.NewLog("s")
	if err := l.Append(scenario.Table1()...); err != nil {
		t.Fatal(err)
	}
	for _, opts := range []Options{
		{},
		{MinSupport: 2},
		{MinSupport: 4, StrictGreater: true},
		{MinSupport: 1, MinDistinctUsers: 1},
		{MinSupport: 2, MinDistinctUsers: 3},
	} {
		want, err := ExtractPatterns(Filter(l.Snapshot()), opts)
		if err != nil {
			t.Fatal(err)
		}
		got, err := PatternsFromGroups(l.Groups(), opts)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(patternSig(t, got), patternSig(t, want)) {
			t.Fatalf("opts %+v:\n index %v\n sql   %v", opts, patternSig(t, got), patternSig(t, want))
		}
	}
}

// TestPatternsFromGroupsRejectsCustomOptions: non-default analysis
// configurations must refuse index service rather than silently
// diverge.
func TestPatternsFromGroupsRejectsCustomOptions(t *testing.T) {
	if IndexExtractable(Options{Extractor: NativeExtractor{}}) {
		t.Fatal("custom extractor must not be index-servable")
	}
	if IndexExtractable(Options{Attrs: []string{"data", "purpose"}}) {
		t.Fatal("non-default attrs must not be index-servable")
	}
	if IndexExtractable(Options{Attrs: []string{"purpose", "data", "authorized"}}) {
		t.Fatal("reordered attrs must not be index-servable")
	}
	if !IndexExtractable(Options{MinSupport: 3, StrictGreater: true}) {
		t.Fatal("default extractor+attrs must be index-servable")
	}
	if _, err := PatternsFromGroups(nil, Options{Extractor: NativeExtractor{}}); err == nil {
		t.Fatal("expected an error for a custom extractor")
	}
}

// TestGroupCoverageMatchesEntryCoverage: the O(groups) coverage must
// equal the O(entries) coverage before and after adoption.
func TestGroupCoverageMatchesEntryCoverage(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	l := audit.NewLog("s")
	if err := l.Append(scenario.Table1()...); err != nil {
		t.Fatal(err)
	}
	check := func(stage string) {
		t.Helper()
		want, err := EntryCoverage(ps, l.Snapshot(), v)
		if err != nil {
			t.Fatal(err)
		}
		got, err := GroupCoverage(ps, l.Groups(), v)
		if err != nil {
			t.Fatal(err)
		}
		if got.Coverage != want.Coverage || got.Total != want.Total || got.Covered != want.Covered {
			t.Fatalf("%s: group %+v vs entry %+v", stage, got, want)
		}
	}
	check("before adoption")
	if got, err := GroupCoverage(ps, l.Groups(), v); err != nil || got.Coverage != scenario.Table1Coverage {
		t.Fatalf("pre-adoption coverage = %v, err %v, want %v", got.Coverage, err, scenario.Table1Coverage)
	}
	ps.Add(scenario.RefinementPattern())
	check("after adoption")
	if got, err := GroupCoverage(ps, l.Groups(), v); err != nil || got.Coverage != scenario.Table1PostAdoptionCoverage {
		t.Fatalf("post-adoption coverage = %v, err %v, want %v", got.Coverage, err, scenario.Table1PostAdoptionCoverage)
	}
}

// TestStreamSessionMatchesSessionTable1 replays the §5 walk-through
// through the streaming session and checks every figure the
// sequential session produces.
func TestStreamSessionMatchesSessionTable1(t *testing.T) {
	v := scenario.Vocabulary()
	psSeq := scenario.PolicyStore()
	psStream := scenario.PolicyStore()

	l := audit.NewLog("s")
	if err := l.Append(scenario.Table1()...); err != nil {
		t.Fatal(err)
	}

	seq := NewSession(psSeq, v, Options{})
	seqRound, err := seq.Run(l.Snapshot(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	stream := NewStreamSession(l, psStream, v, Options{})
	streamRound, err := stream.Run(AdoptAll)
	if err != nil {
		t.Fatal(err)
	}

	if streamRound.Entries != seqRound.Entries || streamRound.Practice != seqRound.Practice {
		t.Fatalf("entries/practice: stream %d/%d, seq %d/%d",
			streamRound.Entries, streamRound.Practice, seqRound.Entries, seqRound.Practice)
	}
	if streamRound.CoverageBefore != seqRound.CoverageBefore ||
		streamRound.CoverageAfter != seqRound.CoverageAfter {
		t.Fatalf("coverage: stream %v→%v, seq %v→%v",
			streamRound.CoverageBefore, streamRound.CoverageAfter,
			seqRound.CoverageBefore, seqRound.CoverageAfter)
	}
	if !reflect.DeepEqual(patternSig(t, streamRound.Patterns), patternSig(t, seqRound.Patterns)) {
		t.Fatalf("patterns: stream %v, seq %v",
			patternSig(t, streamRound.Patterns), patternSig(t, seqRound.Patterns))
	}
	if len(streamRound.Adopted) != 1 ||
		streamRound.Adopted[0].Key() != scenario.RefinementPattern().Key() {
		t.Fatalf("adopted: %v", streamRound.Adopted)
	}
	if psStream.Len() != psSeq.Len() {
		t.Fatalf("policy sizes diverge: %d vs %d", psStream.Len(), psSeq.Len())
	}
}

// TestStreamSessionFallbackExtractor drives the delta-cursor path: a
// custom extractor cannot be served from the index, so the session
// accumulates practice entries via Delta — results must still match
// the sequential session using the same extractor.
func TestStreamSessionFallbackExtractor(t *testing.T) {
	v := scenario.Vocabulary()
	psSeq := scenario.PolicyStore()
	psStream := scenario.PolicyStore()
	opts := Options{Extractor: NativeExtractor{}}

	l := audit.NewLog("s")
	seq := NewSession(psSeq, v, opts)
	stream := NewStreamSession(l, psStream, v, opts)

	table := scenario.Table1()
	halves := [][]audit.Entry{table[:5], table[5:]}
	var cumulative []audit.Entry
	for i, half := range halves {
		cumulative = append(cumulative, half...)
		if err := l.Append(half...); err != nil {
			t.Fatal(err)
		}
		seqRound, err := seq.Run(cumulative, AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		streamRound, err := stream.Run(AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(patternSig(t, streamRound.Patterns), patternSig(t, seqRound.Patterns)) {
			t.Fatalf("half %d: stream %v, seq %v", i,
				patternSig(t, streamRound.Patterns), patternSig(t, seqRound.Patterns))
		}
		if streamRound.CoverageAfter != seqRound.CoverageAfter {
			t.Fatalf("half %d coverage: %v vs %v", i, streamRound.CoverageAfter, seqRound.CoverageAfter)
		}
	}
	// A reset mid-session must resync the cursor without error.
	l.Reset()
	round, err := stream.Run(AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if round.Entries != 0 {
		t.Fatalf("after reset: %d entries", round.Entries)
	}
}

// TestStreamSessionRejectSticky mirrors Session's rejected-rule
// memory: a rejected pattern must not resurface in later rounds.
func TestStreamSessionRejectSticky(t *testing.T) {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()
	l := audit.NewLog("s")
	if err := l.Append(scenario.Table1()...); err != nil {
		t.Fatal(err)
	}
	sess := NewStreamSession(l, ps, v, Options{})
	rejectAll := ReviewerFunc(func(Pattern) Decision { return Reject })
	r1, err := sess.Run(rejectAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Rejected) != 1 || sess.RejectedRules() != 1 {
		t.Fatalf("round 1: %+v", r1)
	}
	r2, err := sess.Run(AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(r2.Patterns) != 0 || len(r2.Adopted) != 0 {
		t.Fatalf("rejected pattern resurfaced: %+v", r2)
	}
}

// TestStreamSessionResyncAfterRecovery: a streaming mining session
// whose log dies and is rebuilt by durable recovery must detect the
// stale delta cursor (the recovered log carries a new epoch), resync,
// and keep producing results identical to the sequential oracle.
func TestStreamSessionResyncAfterRecovery(t *testing.T) {
	v := scenario.Vocabulary()
	psStream := scenario.PolicyStore()
	psSeq := scenario.PolicyStore()
	opts := Options{Extractor: NativeExtractor{}}

	dir := t.TempDir()
	d, _, err := audit.OpenDurable("s", dir, audit.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	table := scenario.Table1()
	if err := d.Append(table[:5]...); err != nil {
		t.Fatal(err)
	}
	stream := NewStreamSession(d.Log(), psStream, v, opts)
	seq := NewSession(psSeq, v, opts)
	if _, err := stream.Run(AdoptAll); err != nil {
		t.Fatal(err)
	}
	if _, err := seq.Run(d.Log().Snapshot(), AdoptAll); err != nil {
		t.Fatal(err)
	}
	d.Sync()
	d.Close() // un-checkpointed WAL tail: reopen replays and bumps epoch

	d2, rs, err := audit.OpenDurable("s", dir, audit.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if rs.WALEntries != 5 {
		t.Fatalf("recovery stats %+v, want 5 WAL entries", rs)
	}
	if err := d2.Append(table[5:]...); err != nil {
		t.Fatal(err)
	}
	stream.Log = d2.Log() // re-attach the session to the recovered log

	streamRound, err := stream.Run(AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	seqRound, err := seq.Run(d2.Log().Snapshot(), AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(patternSig(t, streamRound.Patterns), patternSig(t, seqRound.Patterns)) {
		t.Fatalf("post-recovery patterns: stream %v, seq %v",
			patternSig(t, streamRound.Patterns), patternSig(t, seqRound.Patterns))
	}
	if streamRound.CoverageAfter != seqRound.CoverageAfter {
		t.Fatalf("post-recovery coverage: %v vs %v", streamRound.CoverageAfter, seqRound.CoverageAfter)
	}
	if psStream.Len() != psSeq.Len() {
		t.Fatalf("policy sizes diverge: %d vs %d", psStream.Len(), psSeq.Len())
	}
}
