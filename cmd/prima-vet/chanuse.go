package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// chanuse checks channel operations against the SSA value lattice and
// the lockorder held-set dataflow:
//
//  1. Send or receive on a channel that is nil — definitely (the only
//     reaching definitions are nil) or possibly (nil on some path) —
//     blocks forever. close(nil) panics.
//  2. Send on, or close of, a channel whose reaching definition already
//     passed through close() panics.
//  3. A blocking channel operation — unbuffered send, receive, range
//     over a channel, select without a default — performed while
//     holding a module mutex (the lockorder held-set) parks the
//     goroutine with the lock held, stalling every other user of that
//     lock class.
//
// Rules 1 and 2 use the per-function SSA form: only function-local,
// non-captured channels are tracked, so struct fields and globals are
// never reported on. Rule 3 reuses lockorder's held-set replay; sends
// on channels known to be buffered (constant capacity > 0) are exempt.
var chanuseAnalyzer = &Analyzer{
	Name:       "chanuse",
	Doc:        "nil/closed channel operations and blocking channel ops under module locks",
	RunProgram: runChanuse,
}

func runChanuse(prog *Program) []Finding {
	var out []Finding
	for _, n := range prog.CG.Nodes() {
		out = append(out, chanuseValueRules(prog, n)...)
		out = append(out, chanuseHeldRules(prog, n)...)
	}
	return out
}

// chanuseValueRules walks one function body applying rules 1 and 2 to
// every send, receive, and close operand that SSA tracks.
func chanuseValueRules(prog *Program, n *CGNode) []Finding {
	f := prog.SSA(n)
	var out []Finding
	report := func(pos token.Pos, format string, args ...any) {
		out = append(out, Finding{
			Pos:      n.Pkg.Fset.Position(pos),
			Analyzer: "chanuse",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	// A nil channel in a select comm clause is the standard idiom for
	// disabling that case — exempt from the nil rules. Sends there can
	// still panic if the channel was closed.
	inSelect := make(map[ast.Node]bool)
	ownBody(n, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			comm := c.(*ast.CommClause).Comm
			if comm == nil {
				continue
			}
			ast.Inspect(comm, func(c ast.Node) bool {
				switch x := c.(type) {
				case *ast.SendStmt:
					inSelect[x] = true
				case *ast.UnaryExpr:
					if x.Op == token.ARROW {
						inSelect[x] = true
					}
				}
				return true
			})
		}
		return true
	})

	check := func(site ast.Node, e ast.Expr, pos token.Pos, op string) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return
		}
		v, ok := f.Uses[id]
		if !ok || !isChanExpr(n.Pkg, e) {
			return
		}
		fl := f.Flags(v)
		switch {
		case inSelect[site]:
			// nil disables the case; fall through to the closed rules.
		case fl&latNil != 0 && fl&(latNonNil|latUnknown) == 0:
			if op == "close" {
				report(pos, "close of nil channel %s panics", id.Name)
			} else {
				report(pos, "%s on nil channel %s blocks forever", op, id.Name)
			}
			return
		case fl&latNil != 0:
			report(pos, "%s on possibly-nil channel %s (nil on some path)", op, id.Name)
		}
		if op == "receive" {
			return // receiving from a closed channel is legal
		}
		switch {
		case f.ResolveCopies(v).Kind == valClose:
			if op == "close" {
				report(pos, "close of already-closed channel %s panics", id.Name)
			} else {
				report(pos, "%s on closed channel %s panics", op, id.Name)
			}
		case fl&latClosed != 0:
			report(pos, "%s on channel %s that may already be closed", op, id.Name)
		}
	}
	ownBody(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.SendStmt:
			check(x, x.Chan, x.Arrow, "send")
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				check(x, x.X, x.OpPos, "receive")
			}
		case *ast.CallExpr:
			if isCloseBuiltin(n.Pkg, x) {
				check(x, x.Args[0], x.Pos(), "close")
			}
		}
		return true
	})
	return out
}

// chanuseHeldRules applies rule 3: replay the lockorder held-set over
// the CFG and flag blocking channel operations performed with a module
// lock held.
func chanuseHeldRules(prog *Program, n *CGNode) []Finding {
	f := prog.SSA(n)
	cfg := f.CFG

	// Map each comm statement back to its SelectStmt: the select itself
	// is decomposed during CFG build, so the comm statements are what
	// the replay sees. A select with a default clause never blocks, so
	// its comm statements are excluded from the blocking rules.
	commOf := make(map[ast.Stmt]*ast.SelectStmt)
	blocking := make(map[*ast.SelectStmt]bool)
	ownBody(n, func(m ast.Node) bool {
		sel, ok := m.(*ast.SelectStmt)
		if !ok {
			return true
		}
		blocking[sel] = true
		for _, c := range sel.Body.List {
			if cc := c.(*ast.CommClause); cc.Comm == nil {
				blocking[sel] = false
			} else {
				commOf[cc.Comm] = sel
			}
		}
		return true
	})

	var out []Finding
	seen := make(map[token.Pos]bool)
	report := func(pos token.Pos, what string, held factSet) {
		if seen[pos] {
			return
		}
		seen[pos] = true
		out = append(out, Finding{
			Pos:      n.Pkg.Fset.Position(pos),
			Analyzer: "chanuse",
			Message:  fmt.Sprintf("%s while holding %s may block indefinitely", what, heldNames(held)),
		})
	}
	heldSetReplay(prog, n, func(b *Block, s ast.Stmt, held factSet) {
		if len(held) == 0 {
			return
		}
		if sel, ok := commOf[s]; ok {
			if blocking[sel] {
				report(sel.Pos(), "select without default", held)
			}
			return
		}
		if sel, ok := s.(*ast.SelectStmt); ok {
			// Only the empty select{} survives CFG build as a statement.
			report(sel.Pos(), "select without default", held)
			return
		}
		if rs, ok := cfg.Ranges[b]; ok && len(b.Stmts) > 0 && s == b.Stmts[0] {
			if isChanExpr(n.Pkg, rs.X) {
				report(rs.Pos(), "range over channel", held)
			}
			return
		}
		ast.Inspect(s, func(m ast.Node) bool {
			switch x := m.(type) {
			case *ast.FuncLit:
				return x == n.Lit
			case *ast.GoStmt:
				return false
			case *ast.SendStmt:
				if !isBufferedChan(f, x.Chan) {
					report(x.Arrow, "channel send", held)
				}
			case *ast.UnaryExpr:
				if x.Op == token.ARROW {
					report(x.OpPos, "channel receive", held)
				}
			}
			return true
		})
	}, nil)
	return out
}

// heldNames renders a held-set deterministically for messages.
func heldNames(held factSet) string {
	names := make([]string, 0, len(held))
	for c := range held {
		names = append(names, c)
	}
	sort.Strings(names)
	return strings.Join(names, ", ")
}

// isBufferedChan reports whether the channel expression resolves to an
// SSA value known to be made with constant capacity > 0. Unknown
// channels are treated as unbuffered (may block).
func isBufferedChan(f *FuncSSA, e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := f.Uses[id]
	if !ok {
		return false
	}
	fl := f.Flags(v)
	return fl&latBuffered != 0 && fl&(latUnknown|latNil) == 0
}

// isChanExpr reports whether e's type is a channel.
func isChanExpr(p *Package, e ast.Expr) bool {
	tv, ok := p.Info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	_, ok = tv.Type.Underlying().(*types.Chan)
	return ok
}

// isCloseBuiltin reports whether the call invokes the close builtin on
// one argument.
func isCloseBuiltin(p *Package, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "close" || len(call.Args) != 1 {
		return false
	}
	_, ok = p.Info.Uses[id].(*types.Builtin)
	return ok
}
