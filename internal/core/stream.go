package core

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Streaming refinement: the audit log maintains an incremental
// per-rule index (audit.Log.Groups), so one refinement epoch costs
// O(groups) instead of O(entries). The functions here reproduce the
// sequential pipeline byte-for-byte on its default configuration —
// PatternsFromGroups matches the SQL extractor's GROUP BY … HAVING …
// ORDER BY output exactly, and GroupCoverage matches EntryCoverage's
// counts — which is what lets StreamSession substitute for Session
// without changing any Figure 3 / Table 1 result.

// IndexExtractable reports whether the options' analysis can be
// served from the audit log's incremental rule index: the default
// SQL extractor over the default attribute set (data, purpose,
// authorized) in default order. Custom extractors and non-default
// attribute sets fall back to the delta-fed sequential path.
func IndexExtractable(opts Options) bool {
	o := opts.withDefaults()
	if _, ok := o.Extractor.(SQLExtractor); !ok {
		return false
	}
	if len(o.Attrs) != len(DefaultAttrs) {
		return false
	}
	for i, a := range o.Attrs {
		if vocab.Norm(a) != DefaultAttrs[i] {
			return false
		}
	}
	return true
}

// PatternsFromGroups is the Algorithm 4/5 analysis served from the
// incremental index: the HAVING thresholds applied per group and the
// result ordered exactly as the SQL extractor's ORDER BY support
// DESC, data, purpose, authorized (minidb compares text bytewise, so
// raw-value comparisons reproduce it). Returns an error when the
// options cannot be served from the index.
func PatternsFromGroups(groups []audit.Group, opts Options) ([]Pattern, error) {
	opts = opts.withDefaults()
	if !IndexExtractable(opts) {
		return nil, fmt.Errorf("core: options not servable from the rule index (custom extractor or attrs)")
	}
	kept := make([]audit.Group, 0, len(groups))
	for _, g := range groups {
		if g.Practice == 0 {
			continue
		}
		okSupport := g.Practice >= opts.MinSupport
		if opts.StrictGreater {
			okSupport = g.Practice > opts.MinSupport
		}
		if !okSupport || g.PracticeUsers < opts.MinDistinctUsers {
			continue
		}
		kept = append(kept, g)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].Practice != kept[j].Practice {
			return kept[i].Practice > kept[j].Practice
		}
		if kept[i].Data != kept[j].Data {
			return kept[i].Data < kept[j].Data
		}
		if kept[i].Purpose != kept[j].Purpose {
			return kept[i].Purpose < kept[j].Purpose
		}
		return kept[i].Authorized < kept[j].Authorized
	})
	out := make([]Pattern, 0, len(kept))
	for _, g := range kept {
		rule, err := g.Rule()
		if err != nil {
			return nil, fmt.Errorf("core: pattern rule: %w", err)
		}
		out = append(out, Pattern{
			Rule:          rule,
			Support:       g.Practice,
			DistinctUsers: g.PracticeUsers,
			FirstSeen:     g.First,
			LastSeen:      g.Last,
		})
	}
	return out, nil
}

// GroupCoverage computes §5 row-level coverage from the incremental
// index in O(groups): every group's rows share one canonical rule
// key, so membership is tested once per group and weighted by the
// group size. Counts equal EntryCoverage over the same entries; the
// Uncovered row list is not materialized (use EntryCoverage when the
// offending rows themselves are needed).
func GroupCoverage(ps *policy.Policy, groups []audit.Group, v *vocab.Vocabulary) (*EntryReport, error) {
	rg, err := policy.Shared.Range(ps, v, 0)
	if err != nil {
		return nil, fmt.Errorf("core: range of %s: %w", ps.Name, err)
	}
	rep := &EntryReport{}
	for i := range groups {
		g := &groups[i]
		rep.Total += g.Total
		if rg.ContainsKey(g.Key) {
			rep.Covered += g.Total
		}
	}
	if rep.Total == 0 {
		rep.Coverage = 1
	} else {
		rep.Coverage = float64(rep.Covered) / float64(rep.Total)
	}
	return rep, nil
}

// IncrementalState is persistent per-session extractor state for
// streaming refinement: each epoch folds only the newly appended
// practice rows and extracts from the accumulated state, so epoch
// cost does not grow with log history. Implementations must produce
// exactly what their batch Extract would over the concatenation of
// every Fold since the last Reset.
type IncrementalState interface {
	// Fold absorbs newly appended practice entries (already filtered
	// to exception-based allows, in append order).
	Fold(practice []audit.Entry) error
	// Extract mines everything folded so far.
	Extract() ([]Pattern, error)
	// Reset discards the accumulated state; the feeding cursor was
	// invalidated by a structural log change and the next Fold
	// restarts from the beginning.
	Reset()
}

// IncrementalExtractor is implemented by pattern extractors that can
// maintain IncrementalState across epochs. StreamSession recognizes
// it and feeds the state from the log's delta cursor instead of
// re-running the batch extractor over re-accumulated history.
type IncrementalExtractor interface {
	PatternExtractor
	NewIncremental(opts Options) (IncrementalState, error)
}

// LogExtractor is implemented by pattern extractors that can serve a
// one-shot extraction straight from the audit log's incremental
// per-group index, without a materialized snapshot. served is false
// when the options cannot be index-fed (e.g. non-default attributes)
// and the caller must fall back to the snapshot pipeline.
type LogExtractor interface {
	PatternExtractor
	ExtractLog(l *audit.Log, opts Options) (patterns []Pattern, served bool, err error)
}

// RefineFromLog is Algorithm 2 over a live audit log: analysis from
// the incremental index when the options allow it — either directly
// (the default SQL analysis is the index's GROUP BY) or through an
// index-capable extractor — otherwise the sequential pipeline over a
// snapshot.
func RefineFromLog(ps *policy.Policy, l *audit.Log, v *vocab.Vocabulary, opts Options) ([]Pattern, error) {
	if IndexExtractable(opts) {
		patterns, err := PatternsFromGroups(l.Groups(), opts)
		if err != nil {
			return nil, err
		}
		return Prune(patterns, ps, v)
	}
	o := opts.withDefaults()
	if le, ok := o.Extractor.(LogExtractor); ok {
		if err := checkAttrs(o.Attrs); err != nil {
			return nil, err
		}
		patterns, served, err := le.ExtractLog(l, o)
		if err != nil {
			return nil, err
		}
		if served {
			return Prune(patterns, ps, v)
		}
	}
	return Refinement(ps, l.Snapshot(), v, opts)
}

// StreamSession drives repeated refinement rounds against a live
// audit log, the streaming counterpart of Session: coverage and
// pattern extraction are served from the log's incremental index
// (O(groups) per round), and when a custom extractor forces the
// sequential analysis, the practice entries are accumulated through
// an epoch cursor so each round only reads the appends since the
// last one (O(delta)).
type StreamSession struct {
	Log     *audit.Log
	PS      *policy.Policy
	Vocab   *vocab.Vocabulary
	Opts    Options
	History []Round

	// rejected remembers reviewer-rejected rules so later rounds do
	// not resurface behaviour already ruled bad practice.
	rejected map[string]bool

	// cursor/practice feed the custom-extractor paths: cursor marks
	// how far the log has been consumed. Incremental extractors fold
	// each round's delta into inc; for plain batch extractors,
	// practice re-accumulates the Filter-surviving entries instead.
	cursor   audit.Cursor
	practice []audit.Entry
	inc      IncrementalState
}

// NewStreamSession starts a streaming refinement session over the
// given log and policy store. The store is used by reference:
// adopted rules are added to it.
func NewStreamSession(l *audit.Log, ps *policy.Policy, v *vocab.Vocabulary, opts Options) *StreamSession {
	return &StreamSession{Log: l, PS: ps, Vocab: v, Opts: opts, rejected: make(map[string]bool)}
}

// Run performs one refinement round over the log's current contents:
// measure row coverage, extract and prune patterns, apply the
// reviewer's decisions, and re-measure — the same protocol as
// Session.Run, fed by the incremental index instead of a snapshot.
func (s *StreamSession) Run(reviewer Reviewer) (Round, error) {
	round := Round{Started: time.Now()}
	groups := s.Log.Groups()
	for i := range groups {
		round.Entries += groups[i].Total
		round.Practice += groups[i].Practice
	}

	before, err := GroupCoverage(s.PS, groups, s.Vocab)
	if err != nil {
		return Round{}, err
	}
	round.CoverageBefore = before.Coverage

	var patterns []Pattern
	o := s.Opts.withDefaults()
	ix, incremental := o.Extractor.(IncrementalExtractor)
	switch {
	case IndexExtractable(s.Opts):
		patterns, err = PatternsFromGroups(groups, s.Opts)
	case incremental:
		// Index-servable mining path: persistent extractor state fed
		// by the delta cursor — each epoch folds only the rows
		// appended since the last one.
		if s.inc == nil {
			if err = checkAttrs(o.Attrs); err != nil {
				return Round{}, err
			}
			if s.inc, err = ix.NewIncremental(o); err != nil {
				return Round{}, err
			}
		}
		var delta []audit.Entry
		var resync bool
		delta, s.cursor, resync = s.Log.Delta(s.cursor)
		if resync {
			s.inc.Reset()
		}
		if err = s.inc.Fold(Filter(delta)); err == nil {
			patterns, err = s.inc.Extract()
		}
	default:
		var delta []audit.Entry
		var resync bool
		delta, s.cursor, resync = s.Log.Delta(s.cursor)
		if resync {
			s.practice = s.practice[:0]
		}
		for _, e := range delta {
			if e.Status == audit.Exception && e.Op == audit.Allow {
				s.practice = append(s.practice, e)
			}
		}
		patterns, err = ExtractPatterns(s.practice, s.Opts)
	}
	if err != nil {
		return Round{}, err
	}
	patterns, err = Prune(patterns, s.PS, s.Vocab)
	if err != nil {
		return Round{}, err
	}
	for _, p := range patterns {
		if s.rejected[p.Rule.Key()] {
			continue // previously ruled bad practice
		}
		round.Patterns = append(round.Patterns, p)
	}

	if reviewer == nil {
		reviewer = AdoptAll
	}
	for _, p := range round.Patterns {
		switch reviewer.Review(p) {
		case Adopt:
			s.PS.Add(p.Rule)
			round.Adopted = append(round.Adopted, p.Rule)
		case Reject:
			s.rejected[p.Rule.Key()] = true
			round.Rejected = append(round.Rejected, p)
		default:
			round.Investigating = append(round.Investigating, p)
		}
	}

	after, err := GroupCoverage(s.PS, groups, s.Vocab)
	if err != nil {
		return Round{}, err
	}
	round.CoverageAfter = after.Coverage

	s.History = append(s.History, round)
	return round, nil
}

// RejectedRules returns how many rules the reviewer has ruled out.
func (s *StreamSession) RejectedRules() int { return len(s.rejected) }
