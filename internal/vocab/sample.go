package vocab

// Sample returns the paper's Figure 1 privacy policy vocabulary,
// reconstructed from the worked examples in Sections 3.3 and 5.
//
// The figure is described only partially in the text; the following
// facts anchor the reconstruction:
//
//   - (data, demographic) is composite and its ground set has exactly
//     four elements, two of which are address and gender (§3.1).
//   - The examples use the data categories prescription, referral,
//     psychiatry, insurance, address; the purposes treatment,
//     registration, billing, telemarketing; and the roles nurse,
//     physician/doctor, clerk.
//   - Table 1 marks a Doctor's psychiatry access for treatment as an
//     exception while §3.3 says the policy permits "only a physician"
//     — reconciled by authorizing the distinct ground role
//     psychiatrist, a sibling of doctor, so that both the §3.3 nurse
//     and the Table 1 doctor fall outside the policy (see DESIGN.md).
//     Roles in audit entries must be ground for the paper's row
//     counting (3/6 and 3/10) to hold, so the role hierarchy keeps
//     doctor and psychiatrist as leaves.
//   - §3.3 requires the Fig. 3 policy rule "nurses may access
//     [clinical] data for treatment" to cover prescription and
//     referral (its ground rules 1a, 1b) but NOT psychiatry (audit
//     rule 4 is uncovered), so clinical splits into general
//     (prescription, referral, lab_result) and mental_health
//     (psychiatry, counseling); the policy authorizes general.
func Sample() *Vocabulary {
	v := New()

	data := v.MustAttribute("data")
	data.MustAdd("", "phi") // protected health information (HIPAA umbrella)
	data.MustAdd("phi", "demographic")
	data.MustAdd("demographic", "address")
	data.MustAdd("demographic", "gender")
	data.MustAdd("demographic", "phone")
	data.MustAdd("demographic", "birthdate")
	data.MustAdd("phi", "clinical")
	data.MustAdd("clinical", "general")
	data.MustAdd("general", "prescription")
	data.MustAdd("general", "referral")
	data.MustAdd("general", "lab_result")
	data.MustAdd("clinical", "mental_health")
	data.MustAdd("mental_health", "psychiatry")
	data.MustAdd("mental_health", "counseling")
	data.MustAdd("phi", "financial")
	data.MustAdd("financial", "insurance")
	data.MustAdd("financial", "payment_history")

	purpose := v.MustAttribute("purpose")
	purpose.MustAdd("", "healthcare")
	purpose.MustAdd("healthcare", "treatment")
	purpose.MustAdd("healthcare", "registration")
	purpose.MustAdd("healthcare", "billing")
	purpose.MustAdd("", "research")
	purpose.MustAdd("", "telemarketing")

	auth := v.MustAttribute("authorized")
	auth.MustAdd("", "medical_staff")
	auth.MustAdd("medical_staff", "doctor")
	auth.MustAdd("medical_staff", "psychiatrist")
	auth.MustAdd("medical_staff", "nurse")
	auth.MustAdd("medical_staff", "lab_tech")
	auth.MustAdd("", "admin_staff")
	auth.MustAdd("admin_staff", "clerk")
	auth.MustAdd("admin_staff", "manager")

	return v
}
