package storage

import (
	"bytes"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRaceReadersDuringSplits runs concurrent point reads and range
// scans against a writer driving the tree through many page splits.
// Inserts never recycle pages within an epoch, so readers are safe by
// the copy-on-write argument; the race detector checks the latch
// discipline at the byte level.
func TestRaceReadersDuringSplits(t *testing.T) {
	s, _ := tmpStore(t, Options{PoolPages: 64})
	// Preload so readers always have something to find.
	const preload = 2000
	for i := 0; i < preload; i++ {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup

	wg.Add(1)
	go func() { // writer: grows the tree through splits
		defer wg.Done()
		for i := preload; i < preload+4000; i++ {
			if err := s.Put(key(i), val(i)); err != nil {
				t.Error(err)
				return
			}
		}
		stop.Store(true)
	}()

	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) { // point readers over the stable preload
			defer wg.Done()
			i := r
			for !stop.Load() {
				k := i % preload
				v, ok, err := s.Get(key(k))
				if err != nil {
					t.Error(err)
					return
				}
				if ok && !bytes.Equal(v, val(k)) {
					t.Errorf("Get(%d) returned wrong value", k)
					return
				}
				i++
			}
		}(r)
	}

	wg.Add(1)
	go func() { // scanner: full-range iteration racing the splits
		defer wg.Done()
		for !stop.Load() {
			var last []byte
			err := s.Scan(nil, key(preload), func(k, v []byte) bool {
				if last != nil && bytes.Compare(last, k) >= 0 {
					t.Errorf("scan order violated: %q then %q", last, k)
					return false
				}
				last = append(last[:0], k...)
				return true
			})
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()

	wg.Wait()
	if err := s.Check(); err != nil {
		t.Fatal(err)
	}
}

// TestRacePoolPinEviction hammers a tiny pool from many goroutines so
// pin/unpin constantly races eviction and writeback.
func TestRacePoolPinEviction(t *testing.T) {
	s, _ := tmpStore(t, Options{PoolPages: poolStripes * 2})
	const n = 2000
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Checkpoint(nil); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3000; i++ {
				k := (g*911 + i*31) % n
				v, ok, err := s.Get(key(k))
				if err != nil {
					t.Error(err)
					return
				}
				if !ok || !bytes.Equal(v, val(k)) {
					t.Errorf("Get(%d) = %v under eviction", k, ok)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := s.PoolStats()
	if st.Evictions == 0 {
		t.Fatalf("pool never evicted: %+v", st)
	}
}

// TestRaceCheckpointDuringReads interleaves checkpoints with a read
// workload: checkpoints flush under read latches and must not tear
// pages out from under pinned readers.
func TestRaceCheckpointDuringReads(t *testing.T) {
	s, _ := tmpStore(t, Options{PoolPages: 64})
	const n = 1500
	for i := 0; i < n; i++ {
		if err := s.Put(key(i), val(i)); err != nil {
			t.Fatal(err)
		}
	}
	var stop atomic.Bool
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for e := 0; e < 20; e++ {
			for i := 0; i < 200; i++ {
				if err := s.Put(key(i), []byte(fmt.Sprintf("e%d-%d", e, i))); err != nil {
					t.Error(err)
					return
				}
			}
			if err := s.Checkpoint([]byte(fmt.Sprintf("epoch-%d", e))); err != nil {
				t.Error(err)
				return
			}
		}
		stop.Store(true)
	}()
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			i := r
			for !stop.Load() {
				// Keys >= 200 are never rewritten: their values must
				// hold steady through every checkpoint.
				k := 200 + i%(n-200)
				v, ok, err := s.Get(key(k))
				if err != nil {
					t.Error(err)
					return
				}
				if !ok || !bytes.Equal(v, val(k)) {
					t.Errorf("stable key %d changed under checkpoint", k)
					return
				}
				i++
			}
		}(r)
	}
	wg.Wait()
}
