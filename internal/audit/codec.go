package audit

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"time"
)

// WriteJSONL writes entries as JSON Lines, one entry per line.
func WriteJSONL(w io.Writer, entries []Entry) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, e := range entries {
		if err := enc.Encode(e); err != nil {
			return fmt.Errorf("audit: encode entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads entries written by WriteJSONL, validating each.
func ReadJSONL(r io.Reader) ([]Entry, error) {
	var out []Entry
	dec := json.NewDecoder(r)
	for i := 0; ; i++ {
		var e Entry
		if err := dec.Decode(&e); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("audit: decode entry %d: %w", i, err)
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("audit: entry %d: %w", i, err)
		}
		out = append(out, e)
	}
	return out, nil
}

// ReadJSONLTolerant reads entries like ReadJSONL but tolerates the
// one kind of damage a crash mid-append leaves behind: a truncated
// final line. A last line that does not parse as a complete entry
// (and is not newline-terminated) is dropped and reported through
// truncated; a malformed line anywhere else is still an error, since
// mid-file corruption is never the product of a torn write.
func ReadJSONLTolerant(r io.Reader) (entries []Entry, truncated bool, err error) {
	br := bufio.NewReader(r)
	for i := 0; ; i++ {
		line, rerr := br.ReadBytes('\n')
		if len(line) == 0 && rerr != nil {
			break
		}
		var e Entry
		if jerr := json.Unmarshal(line, &e); jerr != nil {
			if rerr == io.EOF {
				// Torn tail: the file ends inside this line.
				return entries, true, nil
			}
			return nil, false, fmt.Errorf("audit: decode entry %d: %w", i, jerr)
		}
		if verr := e.Validate(); verr != nil {
			return nil, false, fmt.Errorf("audit: entry %d: %w", i, verr)
		}
		entries = append(entries, e)
		if rerr != nil {
			break
		}
	}
	return entries, false, nil
}

// csvHeader is the column order of the CSV codec; the first seven
// columns are the paper's Table 1 schema.
var csvHeader = []string{"time", "op", "user", "data", "purpose", "authorized", "status", "site", "reason"}

// WriteCSV writes entries as CSV with a header row (Table 1 layout).
func WriteCSV(w io.Writer, entries []Entry) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("audit: write header: %w", err)
	}
	for i, e := range entries {
		rec := []string{
			e.Time.UTC().Format(time.RFC3339Nano),
			strconv.Itoa(int(e.Op)),
			e.User,
			e.Data,
			e.Purpose,
			e.Authorized,
			strconv.Itoa(int(e.Status)),
			e.Site,
			e.Reason,
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("audit: write entry %d: %w", i, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV reads entries written by WriteCSV. The site and reason
// columns are optional so that externally produced seven-column files
// in the paper's exact Table 1 layout load unchanged.
func ReadCSV(r io.Reader) ([]Entry, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = -1
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("audit: read csv: %w", err)
	}
	if len(recs) == 0 {
		return nil, nil
	}
	start := 0
	if len(recs[0]) > 0 && recs[0][0] == "time" {
		start = 1 // skip header
	}
	var out []Entry
	for i := start; i < len(recs); i++ {
		rec := recs[i]
		if len(rec) < 7 {
			return nil, fmt.Errorf("audit: row %d has %d columns, want at least 7", i+1, len(rec))
		}
		ts, err := time.Parse(time.RFC3339Nano, rec[0])
		if err != nil {
			return nil, fmt.Errorf("audit: row %d: bad time %q: %w", i+1, rec[0], err)
		}
		op, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("audit: row %d: bad op %q: %w", i+1, rec[1], err)
		}
		status, err := strconv.Atoi(rec[6])
		if err != nil {
			return nil, fmt.Errorf("audit: row %d: bad status %q: %w", i+1, rec[6], err)
		}
		e := Entry{
			Time:       ts,
			Op:         Op(op),
			User:       rec[2],
			Data:       rec[3],
			Purpose:    rec[4],
			Authorized: rec[5],
			Status:     Status(status),
		}
		if len(rec) > 7 {
			e.Site = rec[7]
		}
		if len(rec) > 8 {
			e.Reason = rec[8]
		}
		if err := e.Validate(); err != nil {
			return nil, fmt.Errorf("audit: row %d: %w", i+1, err)
		}
		out = append(out, e)
	}
	return out, nil
}
