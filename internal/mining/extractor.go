package mining

import (
	"sort"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Extractor adapts Apriori to PRIMA's PatternExtractor interface
// (core.Options.Extractor). Each practice entry becomes one
// transaction over the analysis attributes; frequent itemsets that
// span ALL analysis attributes become full patterns (comparable to
// the SQL extractor's output), subject to the distinct-user
// condition. Partial itemsets — the correlations plain SQL misses —
// are available via Correlations.
type Extractor struct {
	// KeepPartial, when set, also returns patterns for frequent
	// itemsets narrower than the full attribute set. Their rules have
	// lower cardinality and therefore never match full-width policy
	// rules; they are surfaced for the privacy officer rather than
	// for automatic adoption.
	KeepPartial bool
}

var (
	_ core.PatternExtractor     = Extractor{}
	_ core.IncrementalExtractor = Extractor{}
	_ core.LogExtractor         = Extractor{}
	_ core.PatternExtractor     = FPGrowth{}
	_ core.IncrementalExtractor = FPGrowth{}
	_ core.LogExtractor         = FPGrowth{}
)

// Extract implements core.PatternExtractor.
func (x Extractor) Extract(practice []audit.Entry, opts core.Options) ([]core.Pattern, error) {
	t, err := buildTable(practice, analysisAttrs(opts))
	if err != nil {
		return nil, err
	}
	ms := minSupportOf(opts)
	if ms < 1 {
		return nil, errMinSupport(ms)
	}
	return patternize(t, aprioriMine(t, ms), opts, x.KeepPartial)
}

// Extract implements core.PatternExtractor with the FP-growth engine.
// Output is byte-identical to Extractor's (differentially tested);
// only the mining cost differs.
func (f FPGrowth) Extract(practice []audit.Entry, opts core.Options) ([]core.Pattern, error) {
	t, err := buildTable(practice, analysisAttrs(opts))
	if err != nil {
		return nil, err
	}
	ms := minSupportOf(opts)
	if ms < 1 {
		return nil, errMinSupport(ms)
	}
	return patternize(t, fpMine(t, ms, f.Workers), opts, f.KeepPartial)
}

// NewIncremental implements core.IncrementalExtractor.
func (x Extractor) NewIncremental(opts core.Options) (core.IncrementalState, error) {
	return newEpochState(opts, x.KeepPartial, false, 0), nil
}

// NewIncremental implements core.IncrementalExtractor.
func (f FPGrowth) NewIncremental(opts core.Options) (core.IncrementalState, error) {
	return newEpochState(opts, f.KeepPartial, true, f.Workers), nil
}

// ExtractLog implements core.LogExtractor: one-shot extraction fed by
// the audit log's incremental per-group index instead of a
// materialized snapshot. Served only for the default attribute set —
// the index groups by (data, purpose, authorized).
func (x Extractor) ExtractLog(l *audit.Log, opts core.Options) ([]core.Pattern, bool, error) {
	return extractLog(l, opts, x.KeepPartial, false, 0)
}

// ExtractLog implements core.LogExtractor with the FP-growth engine.
func (f FPGrowth) ExtractLog(l *audit.Log, opts core.Options) ([]core.Pattern, bool, error) {
	return extractLog(l, opts, f.KeepPartial, true, f.Workers)
}

func extractLog(l *audit.Log, opts core.Options, keepPartial, fp bool, workers int) ([]core.Pattern, bool, error) {
	if !defaultAttrsOnly(opts) {
		return nil, false, nil
	}
	t := newTxTable(defaultTableShards, true)
	ids := make([]int32, 0, 3)
	for _, groups := range l.PracticeShards() {
		for _, g := range groups {
			ids = ids[:0]
			ids = append(ids,
				t.in.intern(Item{Attr: "data", Value: g.Data}),
				t.in.intern(Item{Attr: "purpose", Value: g.Purpose}),
				t.in.intern(Item{Attr: "authorized", Value: g.Authorized}))
			t.foldGroup(ids, g.Weight, g.Users, g.First, g.Last)
		}
	}
	ms := minSupportOf(opts)
	if ms < 1 {
		return nil, false, errMinSupport(ms)
	}
	var sets []mined
	if fp {
		sets = fpMine(t, ms, workers)
	} else {
		sets = aprioriMine(t, ms)
	}
	patterns, err := patternize(t, sets, opts, keepPartial)
	if err != nil {
		return nil, false, err
	}
	return patterns, true, nil
}

// analysisAttrs resolves the attribute set (core's default when
// unset).
func analysisAttrs(opts core.Options) []string {
	if len(opts.Attrs) == 0 {
		return core.DefaultAttrs
	}
	return opts.Attrs
}

func minSupportOf(opts core.Options) int {
	if opts.MinSupport == 0 {
		return 5
	}
	return opts.MinSupport
}

func minUsersOf(opts core.Options) int {
	if opts.MinDistinctUsers == 0 {
		return 2
	}
	return opts.MinDistinctUsers
}

// defaultAttrsOnly reports whether the options analyse exactly the
// default (data, purpose, authorized) attribute set, in order — the
// projection the audit index maintains.
func defaultAttrsOnly(opts core.Options) bool {
	if len(opts.Attrs) == 0 {
		return true
	}
	if len(opts.Attrs) != len(core.DefaultAttrs) {
		return false
	}
	for i, a := range opts.Attrs {
		if vocab.Norm(a) != core.DefaultAttrs[i] {
			return false
		}
	}
	return true
}

// buildTable folds practice entries into a fresh evidence-carrying
// transaction table over the analysis attributes.
func buildTable(practice []audit.Entry, attrs []string) (*txTable, error) {
	t := newTxTable(defaultTableShards, true)
	if err := foldEntries(t, practice, attrs); err != nil {
		return nil, err
	}
	return t, nil
}

// foldEntries projects each entry onto the analysis attributes and
// folds it into the table, interning every item key exactly once.
func foldEntries(t *txTable, practice []audit.Entry, attrs []string) error {
	for i := range practice {
		e := &practice[i]
		ids := t.scratchIDs[:0]
		for _, a := range attrs {
			v, err := attrValue(e, a)
			if err != nil {
				return err
			}
			ids = append(ids, t.in.intern(Item{Attr: a, Value: v}))
		}
		t.scratchIDs = ids
		t.foldIDs(ids, 1, e.User, e.Time)
	}
	return nil
}

// patternize converts mined itemsets into refinement patterns: the
// full-width filter (unless keepPartial), the distinct-user condition,
// and an evidence pass over the weighted distinct transactions (cost
// O(distinct × patterns), independent of raw row count).
func patternize(t *txTable, sets []mined, opts core.Options, keepPartial bool) ([]core.Pattern, error) {
	width := len(analysisAttrs(opts))
	minUsers := minUsersOf(opts)
	var patterns []core.Pattern
	for _, m := range sets {
		if !keepPartial && len(m.ids) != width {
			continue
		}
		users := make(map[string]struct{})
		var first, last time.Time
		for s := range t.shards {
			sh := &t.shards[s]
			for row, set := range sh.sets {
				if !containsIDs(set, m.ids) {
					continue
				}
				for u := range sh.users[row] {
					users[u] = struct{}{}
				}
				if !sh.first[row].IsZero() && (first.IsZero() || sh.first[row].Before(first)) {
					first = sh.first[row]
				}
				if sh.last[row].After(last) {
					last = sh.last[row]
				}
			}
		}
		if len(users) < minUsers {
			continue
		}
		items := t.in.itemset(m.ids)
		terms := make([]policy.Term, len(items))
		for i, it := range items {
			terms[i] = policy.T(it.Attr, it.Value)
		}
		rule, err := policy.NewRule(terms...)
		if err != nil {
			return nil, err
		}
		patterns = append(patterns, core.Pattern{
			Rule:          rule,
			Support:       m.support,
			DistinctUsers: len(users),
			FirstSeen:     first,
			LastSeen:      last,
		})
	}
	sort.Slice(patterns, func(i, j int) bool {
		if patterns[i].Support != patterns[j].Support {
			return patterns[i].Support > patterns[j].Support
		}
		return patterns[i].Rule.Key() < patterns[j].Rule.Key()
	})
	return patterns, nil
}

// Correlations mines the practice entries and returns only the
// *partial* frequent itemsets (narrower than the full attribute set):
// the attribute-pair correlations the paper's §5 says simple SQL
// queries do not discover.
func Correlations(practice []audit.Entry, attrs []string, minSupport int) ([]Frequent, error) {
	if len(attrs) == 0 {
		attrs = core.DefaultAttrs
	}
	t := newTxTable(1, false)
	if err := foldEntries(t, practice, attrs); err != nil {
		return nil, err
	}
	if minSupport < 1 {
		return nil, errMinSupport(minSupport)
	}
	res := finishResult(t, aprioriMine(t, minSupport), len(practice), minSupport)
	var out []Frequent
	for _, f := range res.Frequent {
		if len(f.Items) >= 2 && len(f.Items) < len(attrs) {
			out = append(out, f)
		}
	}
	return out, nil
}

func attrValue(e *audit.Entry, attr string) (string, error) {
	switch vocab.Norm(attr) {
	case "data":
		return e.Data, nil
	case "purpose":
		return e.Purpose, nil
	case "authorized":
		return e.Authorized, nil
	case "user":
		return e.User, nil
	case "op":
		if e.Op == audit.Allow {
			return "1", nil
		}
		return "0", nil
	case "status":
		if e.Status == audit.Regular {
			return "1", nil
		}
		return "0", nil
	default:
		return "", errBadAttr(attr)
	}
}

type errBadAttr string

func (e errBadAttr) Error() string { return "mining: invalid analysis attribute " + string(e) }
