package workflow

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"repro/internal/audit"
	"repro/internal/hdb"
	"repro/internal/minidb"
	"repro/internal/vocab"
)

// Driver replays simulated accesses through a live HDB enforcement
// stack instead of fabricating audit entries directly: every access
// becomes a real SQL query against a clinical table; accesses the
// policy denies are retried through the break-the-glass path, exactly
// as ward staff would. The enforcer's compliance audit log therefore
// fills with middleware-produced entries, closing the full Figure 4
// loop for integration tests and demos.
type Driver struct {
	enf     *hdb.Enforcer
	table   string
	clockAt time.Time
}

// NewDriver prepares a clinical table with one column per ground data
// category of the vocabulary, places it under enforcement, and seeds
// it with a few patient rows. The enforcer's clock is taken over so
// audit timestamps equal the simulated access times.
func NewDriver(enf *hdb.Enforcer, v *vocab.Vocabulary, table string) (*Driver, error) {
	leaves := v.Hierarchy("data").Leaves()
	cols := make([]minidb.Column, 0, len(leaves)+1)
	cols = append(cols, minidb.Column{Name: "patient", Type: minidb.TypeText})
	cats := make(map[string]string, len(leaves))
	for _, leaf := range leaves {
		col := strings.ToLower(leaf)
		cols = append(cols, minidb.Column{Name: col, Type: minidb.TypeText})
		cats[col] = leaf
	}
	if _, err := enf.DB().CreateTable(table, cols); err != nil {
		return nil, err
	}
	for i := 0; i < 4; i++ {
		row := make([]minidb.Value, len(cols))
		row[0] = minidb.Text(fmt.Sprintf("p%d", i+1))
		for j := 1; j < len(cols); j++ {
			row[j] = minidb.Text(fmt.Sprintf("%s-%d", cols[j].Name, i+1))
		}
		if err := enf.DB().Insert(table, row...); err != nil {
			return nil, err
		}
	}
	if err := enf.RegisterTable(hdb.TableMapping{
		Table:      table,
		PatientCol: "patient",
		Categories: cats,
	}); err != nil {
		return nil, err
	}
	d := &Driver{enf: enf, table: table}
	enf.SetClock(func() time.Time { return d.clockAt })
	return d, nil
}

// PlayStats summarizes a replay.
type PlayStats struct {
	Accesses   int
	Regular    int // allowed directly by policy
	BreakGlass int // denied, then satisfied via the exception path
	Failed     int // queries that failed outright (should be zero)
}

// Play replays the simulator's accesses for the given window through
// the enforcement stack. The simulator's own status labels are
// ignored; the middleware decides, which keeps the two status sources
// independently checkable.
func (d *Driver) Play(sim *Simulator, startDay, days int) (PlayStats, error) {
	entries, err := sim.Run(startDay, days)
	if err != nil {
		return PlayStats{}, err
	}
	var st PlayStats
	for _, e := range entries {
		st.Accesses++
		d.clockAt = e.Time
		p := hdb.Principal{User: e.User, Role: e.Authorized}
		sql := fmt.Sprintf("SELECT patient, %s FROM %s", strings.ToLower(e.Data), d.table)
		_, _, err := d.enf.Query(p, e.Purpose, sql)
		switch {
		case err == nil:
			st.Regular++
		case errors.Is(err, hdb.ErrDenied):
			if _, _, bgErr := d.enf.BreakGlass(p, e.Purpose, "clinical necessity", sql); bgErr != nil {
				st.Failed++
			} else {
				st.BreakGlass++
			}
		default:
			st.Failed++
		}
	}
	return st, nil
}

// ExceptionEntries returns the break-the-glass entries the enforcer
// audited during replays.
func (d *Driver) ExceptionEntries() []audit.Entry {
	if d.enf.AuditLog() == nil {
		return nil
	}
	return d.enf.AuditLog().Exceptions()
}
