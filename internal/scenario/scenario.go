// Package scenario provides the paper's worked examples as reusable
// fixtures: the Figure 1 vocabulary, the Figure 3 policy store and
// audit-log policy, and the Table 1 audit trail, together with the
// results the paper states for them (coverage 50 %, coverage 30 %,
// the refinement pattern Referral:Registration:Nurse, and the
// post-adoption coverage). Tests, examples, commands and benchmarks
// all share these fixtures so the numbers are defined exactly once.
package scenario

import (
	"time"

	"repro/internal/audit"
	"repro/internal/policy"
	"repro/internal/vocab"
)

// Vocabulary returns the Figure 1 vocabulary.
func Vocabulary() *vocab.Vocabulary { return vocab.Sample() }

// PolicyStore returns the reconstructed Figure 3 policy store P_PS:
// three composite rules (see DESIGN.md for the reconstruction):
//
//  1. nurses may access general clinical data for treatment
//  2. psychiatrists may access psychiatry data for treatment
//  3. clerks may access demographic data for billing
func PolicyStore() *policy.Policy {
	return policy.FromRules("PS",
		policy.MustRule(
			policy.T("data", "general"),
			policy.T("purpose", "treatment"),
			policy.T("authorized", "nurse"),
		),
		policy.MustRule(
			policy.T("data", "psychiatry"),
			policy.T("purpose", "treatment"),
			policy.T("authorized", "psychiatrist"),
		),
		policy.MustRule(
			policy.T("data", "demographic"),
			policy.T("purpose", "billing"),
			policy.T("authorized", "clerk"),
		),
	)
}

// Figure3AuditPolicy returns the Figure 3 audit-log policy P_AL: six
// ground rules, of which 1, 2 and 5 are covered by P_PS and 3, 4 and
// 6 are the exception scenarios the paper explains.
func Figure3AuditPolicy() *policy.Policy {
	mk := func(data, purpose, role string) policy.Rule {
		return policy.MustRule(
			policy.T("data", data),
			policy.T("purpose", purpose),
			policy.T("authorized", role),
		)
	}
	return policy.FromRules("AL",
		mk("prescription", "treatment", "nurse"), // 1: matched (1a/1b family)
		mk("referral", "treatment", "nurse"),     // 2: matched
		mk("referral", "registration", "nurse"),  // 3: exception
		mk("psychiatry", "treatment", "nurse"),   // 4: exception
		mk("address", "billing", "clerk"),        // 5: matched (3a)
		mk("prescription", "billing", "clerk"),   // 6: exception
	)
}

// Figure3Coverage is the coverage the paper computes for Figure 3.
const Figure3Coverage = 0.5 // 3/6

// Table1Base is the timestamp assigned to t1; successive rows are one
// hour apart. The paper gives only symbolic times t1..t10.
var Table1Base = time.Date(2007, time.March, 1, 8, 0, 0, 0, time.UTC)

// Table1 returns the audit trail of Table 1 verbatim: ten allowed
// accesses, six of them exception-based.
func Table1() []audit.Entry {
	row := func(i int, user, data, purpose, role string, st audit.Status) audit.Entry {
		return audit.Entry{
			Time:       Table1Base.Add(time.Duration(i-1) * time.Hour),
			Op:         audit.Allow,
			User:       user,
			Data:       data,
			Purpose:    purpose,
			Authorized: role,
			Status:     st,
		}
	}
	return []audit.Entry{
		row(1, "John", "Prescription", "Treatment", "Nurse", audit.Regular),
		row(2, "Tim", "Referral", "Treatment", "Nurse", audit.Regular),
		row(3, "Mark", "Referral", "Registration", "Nurse", audit.Exception),
		row(4, "Sarah", "Psychiatry", "Treatment", "Doctor", audit.Exception),
		row(5, "Bill", "Address", "Billing", "Clerk", audit.Regular),
		row(6, "Jason", "Prescription", "Billing", "Clerk", audit.Exception),
		row(7, "Mark", "Referral", "Registration", "Nurse", audit.Exception),
		row(8, "Tim", "Referral", "Registration", "Nurse", audit.Exception),
		row(9, "Bob", "Referral", "Registration", "Nurse", audit.Exception),
		row(10, "Mark", "Referral", "Registration", "Nurse", audit.Exception),
	}
}

// Table1Coverage is the coverage the paper computes over the Table 1
// snapshot, counting each audit row ("the ratio of matching rules to
// total rules ... is now 3/10").
const Table1Coverage = 0.3

// Table1PostAdoptionCoverage is the row coverage after the discovered
// pattern is adopted into P_PS: rows t1, t2, t5 plus t3 and t7–t10
// become covered (8/10).
const Table1PostAdoptionCoverage = 0.8

// RefinementPattern is the single pattern the §5 walk-through
// discovers: Referral : Registration : Nurse.
func RefinementPattern() policy.Rule {
	return policy.MustRule(
		policy.T("data", "Referral"),
		policy.T("purpose", "Registration"),
		policy.T("authorized", "Nurse"),
	)
}

// Table1PracticeSize is the number of Table 1 rows that survive
// Filter (the exception-based rows t3, t4, t6–t10).
const Table1PracticeSize = 7

// RefinementSupport is how many Practice rows carry the discovered
// pattern (t3, t7–t10).
const RefinementSupport = 5

// RefinementDistinctUsers is how many distinct users exhibit the
// pattern (Mark, Tim, Bob).
const RefinementDistinctUsers = 3
