package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// arenasafe guards the immutable-after-publish contract of arena-
// backed values (types marked prima:arena — policy.Range, whose rules
// and key map are built once from the grounding arena and then shared
// lock-free through RangeCache). The life cycle:
//
//	fresh      the value was allocated here (composite literal) and
//	           may be freely filled in;
//	published  the value escaped — returned, stored into a struct,
//	           map, slice, global, or channel, captured by a closure,
//	           or passed to a function that retains it (per an
//	           interprocedural escape summary);
//	frozen     after publication any write through the value — a
//	           direct field/element store or a call to a method or
//	           function that mutates its parameter (per a mutation
//	           summary) — is a finding.
//
// Values received from calls or reads (a cache hit, a map load) are
// treated as published from birth: the receiver cannot know who else
// holds them. Aliasing through plain local copies is not tracked.
var arenasafeAnalyzer = &Analyzer{
	Name:       "arenasafe",
	Doc:        "prima:arena values must not be mutated after publication",
	RunProgram: runArenasafe,
}

// arenaSummary records, per function, which parameters (receiver
// first) it writes through and which it retains.
type arenaSummary struct {
	mutates uint64
	stores  uint64
}

func runArenasafe(prog *Program) []Finding {
	if len(prog.Markers.Arenas) == 0 {
		return nil
	}
	sums := arenaSummaries(prog)
	var out []Finding
	for _, n := range prog.CG.Nodes() {
		arenaScanNode(prog, n, sums, func(pos token.Pos, msg string) {
			out = append(out, Finding{
				Pos:      n.Pkg.Fset.Position(pos),
				Analyzer: "arenasafe",
				Message:  msg,
			})
		})
	}
	return out
}

func isArenaType(prog *Program, t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := derefType(t).(*types.Named)
	return ok && prog.Markers.Arenas[named]
}

// ---- interprocedural summaries ----

// arenaSummaries computes the mutates/stores masks of every function
// to a fixpoint over the call graph.
func arenaSummaries(prog *Program) map[*CGNode]*arenaSummary {
	sums := make(map[*CGNode]*arenaSummary, len(prog.CG.Nodes()))
	for _, n := range prog.CG.Nodes() {
		sums[n] = &arenaSummary{}
	}
	for changed := true; changed; {
		changed = false
		for _, n := range prog.CG.Nodes() {
			mut, sto := summarizeNode(prog, n, sums)
			s := sums[n]
			if mut|s.mutates != s.mutates || sto|s.stores != s.stores {
				s.mutates |= mut
				s.stores |= sto
				changed = true
			}
		}
	}
	return sums
}

// summarizeNode derives one function's masks given current callee
// summaries.
func summarizeNode(prog *Program, n *CGNode, sums map[*CGNode]*arenaSummary) (mutates, stores uint64) {
	params := paramObjs(n)
	idx := make(map[types.Object]int, len(params))
	for i, obj := range params {
		idx[obj] = i
	}
	info := n.Pkg.Info
	paramOf := func(e ast.Expr) (int, bool) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return 0, false
		}
		obj := info.Uses[id]
		if obj == nil {
			return 0, false
		}
		i, ok := idx[obj]
		return i, ok
	}

	ownBody(n, func(m ast.Node) bool {
		switch x := m.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if root, pathed := rootIdent(lhs); pathed {
					if obj := info.Uses[root]; obj != nil {
						if i, ok := idx[obj]; ok {
							mutates |= paramBit(i)
						}
					}
				}
			}
			// Storing a parameter through any non-trivial lvalue counts
			// as retention (field, index, deref, or an outer variable).
			plainLocal := len(x.Lhs) == 1 && isPlainLocalIdent(info, x.Lhs[0], idx)
			if !plainLocal {
				for _, rhs := range x.Rhs {
					if i, ok := paramOf(stripAddr(rhs)); ok {
						stores |= paramBit(i)
					}
				}
			}
		case *ast.IncDecStmt:
			if root, pathed := rootIdent(x.X); pathed {
				if obj := info.Uses[root]; obj != nil {
					if i, ok := idx[obj]; ok {
						mutates |= paramBit(i)
					}
				}
			}
		case *ast.ReturnStmt:
			for _, r := range x.Results {
				if i, ok := paramOf(stripAddr(r)); ok {
					stores |= paramBit(i)
				}
			}
		case *ast.SendStmt:
			if i, ok := paramOf(stripAddr(x.Value)); ok {
				stores |= paramBit(i)
			}
		case *ast.CompositeLit:
			for _, el := range x.Elts {
				if kv, ok := el.(*ast.KeyValueExpr); ok {
					el = kv.Value
				}
				if i, ok := paramOf(stripAddr(el)); ok {
					stores |= paramBit(i)
				}
			}
		case *ast.FuncLit:
			// Captured parameters may be written or retained later.
			ast.Inspect(x.Body, func(c ast.Node) bool {
				if id, ok := c.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil {
						if i, ok := idx[obj]; ok {
							stores |= paramBit(i)
							mutates |= paramBit(i)
						}
					}
				}
				return true
			})
			return false
		case *ast.CallExpr:
			mut, sto := callEffects(prog, n, x, sums, func(e ast.Expr) (int, bool) {
				return paramOf(e)
			})
			mutates |= mut
			stores |= sto
		}
		return true
	})
	return mutates, stores
}

// callEffects maps a call's argument effects back onto the caller's
// slots: slotOf resolves an argument expression to a caller slot
// (parameter index in summaries, or a synthetic slot in the local
// analysis). Unresolvable args are ignored.
func callEffects(prog *Program, n *CGNode, call *ast.CallExpr, sums map[*CGNode]*arenaSummary, slotOf func(ast.Expr) (int, bool)) (mutates, stores uint64) {
	info := n.Pkg.Info
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return 0, 0 // conversion
	}
	args := callArgsOf(info, call)
	callees := calleesAt(n, call)
	if len(callees) == 0 {
		// Builtins: append/copy retain their arguments; the rest are
		// harmless. Everything else opaque (std) is assumed to retain.
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
			if b, ok := info.Uses[id].(*types.Builtin); ok {
				if b.Name() != "append" && b.Name() != "copy" {
					return 0, 0
				}
			}
		}
		for _, arg := range args {
			if i, ok := slotOf(stripAddr(arg)); ok {
				stores |= paramBit(i)
			}
		}
		return 0, stores
	}
	for _, callee := range callees {
		s := sums[callee]
		for j, arg := range args {
			i, ok := slotOf(stripAddr(arg))
			if !ok {
				continue
			}
			if s.mutates&paramBit(j) != 0 {
				mutates |= paramBit(i)
			}
			if s.stores&paramBit(j) != 0 {
				stores |= paramBit(i)
			}
		}
	}
	return mutates, stores
}

// ---- per-function published-set analysis ----

// arenaScanNode tracks fresh arena locals through the CFG and reports
// writes that may happen after publication.
func arenaScanNode(prog *Program, n *CGNode, sums map[*CGNode]*arenaSummary, report func(token.Pos, string)) {
	info := n.Pkg.Info

	// arenaLocal resolves an expression to a function-local arena
	// variable (declared inside the body — parameters and globals are
	// out of scope for the fresh/published protocol).
	arenaLocal := func(e ast.Expr) (*types.Var, bool) {
		id, ok := ast.Unparen(stripAddr(e)).(*ast.Ident)
		if !ok {
			return nil, false
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		v, ok := obj.(*types.Var)
		if !ok || v.IsField() || !isArenaType(prog, v.Type()) {
			return nil, false
		}
		if v.Pos() < n.Body.Pos() || v.Pos() > n.Body.End() {
			return nil, false
		}
		return v, true
	}
	factFor := func(v *types.Var) string { return "pub:" + strconv.Itoa(int(v.Pos())) }
	className := func(v *types.Var) string {
		named, _ := derefType(v.Type()).(*types.Named)
		return shortClass(classOf(named), prog.Loader.Module)
	}

	apply := func(b *Block, pub factSet, rec bool) factSet {
		pub = pub.clone()
		checkWrite := func(v *types.Var, pos token.Pos) {
			if rec && pub[factFor(v)] {
				report(pos, fmt.Sprintf("%s %q mutated after publication (prima:arena)", className(v), v.Name()))
			}
		}
		for _, s := range b.Stmts {
			ast.Inspect(s, func(m ast.Node) bool {
				switch x := m.(type) {
				case *ast.FuncLit:
					// Capture publishes: the closure may run anytime.
					ast.Inspect(x.Body, func(c ast.Node) bool {
						if e, ok := c.(ast.Expr); ok {
							if v, ok := arenaLocal(e); ok {
								pub[factFor(v)] = true
							}
						}
						return true
					})
					return false
				case *ast.AssignStmt:
					for i, lhs := range x.Lhs {
						var rhs ast.Expr
						if len(x.Lhs) == len(x.Rhs) {
							rhs = x.Rhs[i]
						}
						if v, ok := arenaLocal(lhs); ok {
							// Rebinding the variable itself.
							if rhs != nil && isFreshArenaAlloc(prog, info, rhs) {
								delete(pub, factFor(v))
							} else {
								pub[factFor(v)] = true // received: published at birth
							}
							continue
						}
						if root, pathed := rootIdent(lhs); pathed {
							if v, ok := arenaLocal(root); ok {
								checkWrite(v, lhs.Pos())
								continue
							}
						}
						// Storing an arena value into some other lvalue.
						if rhs != nil {
							if v, ok := arenaLocal(rhs); ok {
								pub[factFor(v)] = true
							}
						}
					}
					if len(x.Lhs) != len(x.Rhs) {
						for _, rhs := range x.Rhs {
							if v, ok := arenaLocal(rhs); ok {
								pub[factFor(v)] = true
							}
						}
					}
				case *ast.IncDecStmt:
					if root, pathed := rootIdent(x.X); pathed {
						if v, ok := arenaLocal(root); ok {
							checkWrite(v, x.Pos())
						}
					}
				case *ast.ReturnStmt:
					for _, r := range x.Results {
						if v, ok := arenaLocal(r); ok {
							pub[factFor(v)] = true
						}
					}
				case *ast.SendStmt:
					if v, ok := arenaLocal(x.Value); ok {
						pub[factFor(v)] = true
					}
				case *ast.CompositeLit:
					if !isFreshArenaAlloc(prog, info, x) {
						for _, el := range x.Elts {
							if kv, ok := el.(*ast.KeyValueExpr); ok {
								el = kv.Value
							}
							if v, ok := arenaLocal(el); ok {
								pub[factFor(v)] = true
							}
						}
					}
				case *ast.CallExpr:
					// Map argument slots to the arena locals they carry.
					var slotVars []*types.Var
					slotOf := func(e ast.Expr) (int, bool) {
						if v, ok := arenaLocal(e); ok {
							slotVars = append(slotVars, v)
							return len(slotVars) - 1, true
						}
						return 0, false
					}
					mut, sto := callEffects(prog, n, x, sums, slotOf)
					for i, v := range slotVars {
						if mut&paramBit(i) != 0 {
							checkWrite(v, x.Pos())
						}
						if sto&paramBit(i) != 0 {
							pub[factFor(v)] = true
						}
					}
				}
				return true
			})
		}
		return pub
	}

	cfg := BuildCFG(n.Body)
	res := cfg.Fixpoint(factSet{}, func(b *Block, in factSet) factSet {
		return apply(b, in, false)
	})
	for _, b := range cfg.Blocks {
		apply(b, res.In[b.Index], true)
	}
}

// ---- small shared helpers ----

// rootIdent walks an lvalue path (x.f[i].g = ...) to its root
// identifier; pathed reports whether at least one selector, index, or
// dereference sits between the root and the assignment.
func rootIdent(e ast.Expr) (id *ast.Ident, pathed bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, pathed
		case *ast.SelectorExpr:
			e = x.X
			pathed = true
		case *ast.IndexExpr:
			e = x.X
			pathed = true
		case *ast.StarExpr:
			e = x.X
			pathed = true
		default:
			return nil, false
		}
	}
}

// stripAddr unwraps &x to x.
func stripAddr(e ast.Expr) ast.Expr {
	if u, ok := ast.Unparen(e).(*ast.UnaryExpr); ok && u.Op == token.AND {
		return u.X
	}
	return ast.Unparen(e)
}

// isPlainLocalIdent reports whether the lvalue is a bare identifier
// that is not one of the function's parameters (a local rebinding).
func isPlainLocalIdent(info *types.Info, e ast.Expr, paramIdx map[types.Object]int) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return false
	}
	obj := info.Defs[id]
	if obj == nil {
		obj = info.Uses[id]
	}
	if obj == nil {
		return false
	}
	_, isParam := paramIdx[obj]
	return !isParam
}

// isFreshArenaAlloc recognizes T{...} and &T{...} for arena type T.
func isFreshArenaAlloc(prog *Program, info *types.Info, e ast.Expr) bool {
	cl, ok := ast.Unparen(stripAddr(e)).(*ast.CompositeLit)
	if !ok {
		return false
	}
	tv, ok := info.Types[cl]
	return ok && isArenaType(prog, tv.Type)
}

// callArgsOf lists a call's effective arguments in callee slot order
// (receiver first for method values).
func callArgsOf(info *types.Info, call *ast.CallExpr) []ast.Expr {
	var out []ast.Expr
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if s, ok := info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			out = append(out, sel.X)
		}
	}
	out = append(out, call.Args...)
	return out
}

// calleesAt returns the resolved module callees of one call site.
func calleesAt(n *CGNode, call *ast.CallExpr) []*CGNode {
	for _, site := range n.Calls {
		if site.Call == call {
			return site.Callees
		}
	}
	return nil
}

// paramObjs returns receiver + declared parameter objects in slot
// order for any call-graph node.
func paramObjs(n *CGNode) []types.Object {
	var out []types.Object
	defs := n.Pkg.Info.Defs
	addFields := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj := defs[name]; obj != nil {
					out = append(out, obj)
				}
			}
		}
	}
	if n.Decl != nil {
		addFields(n.Decl.Recv)
		addFields(n.Decl.Type.Params)
	} else if n.Lit != nil {
		addFields(n.Lit.Type.Params)
	}
	return out
}
