package netfed

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// ProtocolVersion is the wire protocol revision; hello/helloAck carry
// it and both ends refuse a mismatch.
const ProtocolVersion = 1

// maxSiteName bounds the site identifier in a hello.
const maxSiteName = 1 << 10

var errBadHandshake = errors.New("netfed: malformed handshake message")

// hello is the client's session opener.
type hello struct {
	version uint64
	site    string
}

func appendHello(dst []byte, h hello) []byte {
	dst = binary.AppendUvarint(dst, h.version)
	dst = binary.AppendUvarint(dst, uint64(len(h.site)))
	return append(dst, h.site...)
}

func parseHello(payload []byte) (hello, error) {
	var h hello
	v, n := binary.Uvarint(payload)
	if n <= 0 {
		return h, errBadHandshake
	}
	payload = payload[n:]
	ln, n := binary.Uvarint(payload)
	if n <= 0 || ln > maxSiteName || ln != uint64(len(payload)-n) {
		return h, errBadHandshake
	}
	h.version = v
	h.site = string(payload[n:])
	return h, nil
}

// helloAck is the server's answer: where to resume and how many
// batches may be in flight.
type helloAck struct {
	version uint64
	resume  uint64 // highest contiguous seq the server holds for the site
	window  uint64 // max unacked batches the client may pipeline
}

func appendHelloAck(dst []byte, a helloAck) []byte {
	dst = binary.AppendUvarint(dst, a.version)
	dst = binary.AppendUvarint(dst, a.resume)
	return binary.AppendUvarint(dst, a.window)
}

func parseHelloAck(payload []byte) (helloAck, error) {
	var a helloAck
	var n int
	pos := 0
	for _, field := range []*uint64{&a.version, &a.resume, &a.window} {
		*field, n = binary.Uvarint(payload[pos:])
		if n <= 0 {
			return helloAck{}, errBadHandshake
		}
		pos += n
	}
	if pos != len(payload) {
		return helloAck{}, errBadHandshake
	}
	return a, nil
}

func appendAck(dst []byte, seq uint64) []byte {
	return binary.AppendUvarint(dst, seq)
}

func parseAck(payload []byte) (uint64, error) {
	seq, n := binary.Uvarint(payload)
	if n <= 0 || n != len(payload) {
		return 0, errBadHandshake
	}
	return seq, nil
}

// protocolError is a peer-reported MsgError, surfaced locally as an
// error value.
type protocolError struct{ msg string }

func (e *protocolError) Error() string { return fmt.Sprintf("netfed: peer error: %s", e.msg) }

// parseErrorMsg renders a MsgError payload (UTF-8 text) as an error.
func parseErrorMsg(payload []byte) error {
	const maxErr = 1 << 12
	if len(payload) > maxErr {
		payload = payload[:maxErr]
	}
	return &protocolError{msg: string(payload)}
}
