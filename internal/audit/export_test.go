package audit

import (
	"reflect"
	"sync"
	"testing"
)

// TestExportDeltaSequential: chunked export must reproduce Snapshot
// exactly — the contiguous range property over a quiet log.
func TestExportDeltaSequential(t *testing.T) {
	l := NewLog("s")
	entries := genEntries(500)
	if err := l.Append(entries...); err != nil {
		t.Fatal(err)
	}
	var got []Entry
	var c ExportCursor
	for {
		batch, next, err := l.ExportDelta(c, 64)
		if err != nil {
			t.Fatal(err)
		}
		if len(batch) == 0 {
			break
		}
		if next.Seq() != c.Seq()+uint64(len(batch)) {
			t.Fatalf("cursor advanced %d..%d for %d entries", c.Seq(), next.Seq(), len(batch))
		}
		got = append(got, batch...)
		c = next
	}
	if c.Seq() != l.Seq() {
		t.Fatalf("cursor stopped at %d, log at %d", c.Seq(), l.Seq())
	}
	if !reflect.DeepEqual(got, l.Snapshot()) {
		t.Fatal("chunked export differs from Snapshot")
	}
	// Unbounded export from scratch agrees too.
	all, next, err := l.ExportDelta(ExportCursor{}, 0)
	if err != nil || next.Seq() != l.Seq() || !reflect.DeepEqual(all, got) {
		t.Fatalf("unbounded export differs (err %v)", err)
	}
}

// TestExportDeltaConcurrent: a tailer exporting while several
// goroutines append must still observe every sequence number exactly
// once, in order — the deferred-merge path under real interleaving.
func TestExportDeltaConcurrent(t *testing.T) {
	l := NewLog("s")
	const writers, perWriter = 8, 500
	entries := genEntries(writers * perWriter)
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w * perWriter; i < (w+1)*perWriter; i++ {
				if err := l.Append(entries[i]); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	var got []Entry
	var c ExportCursor
	for len(got) < writers*perWriter {
		batch, next, err := l.ExportDelta(c, 37)
		if err != nil {
			t.Fatal(err)
		}
		if next.Seq() != c.Seq()+uint64(len(batch)) {
			t.Fatalf("range (%d, %d] delivered %d entries", c.Seq(), next.Seq(), len(batch))
		}
		got = append(got, batch...)
		c = next
	}
	wg.Wait()
	if !reflect.DeepEqual(got, l.Snapshot()) {
		t.Fatal("tailed export differs from final Snapshot")
	}
}

// TestExportDeltaInvalidated: a structural change (Reset) must fail
// outstanding cursors instead of silently skipping entries.
func TestExportDeltaInvalidated(t *testing.T) {
	l := NewLog("s")
	if err := l.Append(genEntries(100)...); err != nil {
		t.Fatal(err)
	}
	_, c, err := l.ExportDelta(ExportCursor{}, 10)
	if err != nil {
		t.Fatal(err)
	}
	l.Reset()
	if err := l.Append(genEntries(10)...); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.ExportDelta(c, 10); err != ErrExportInvalidated {
		t.Fatalf("err = %v, want ErrExportInvalidated", err)
	}
	// A fresh cursor works against the reset log.
	batch, next, err := l.ExportDelta(ExportCursor{}, 0)
	if err != nil || len(batch) != 10 || next.Seq() != l.Seq() {
		t.Fatalf("fresh cursor after reset: %d entries, err %v", len(batch), err)
	}
}

// TestMergeGroupsMatchesSingleLog: merging k logs' incremental indexes
// must equal the single-log index over the union of their entries.
func TestMergeGroupsMatchesSingleLog(t *testing.T) {
	entries := genEntries(1200)
	union := NewLog("u")
	parts := []*Log{NewLog("a"), NewLog("b"), NewLog("c")}
	for i, e := range entries {
		if err := parts[i%len(parts)].Append(e); err != nil {
			t.Fatal(err)
		}
		if err := union.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	got := MergeGroups(parts...)
	want := union.Groups()
	if len(got) != len(want) {
		t.Fatalf("%d merged groups, want %d", len(got), len(want))
	}
	for i := range got {
		g, w := got[i], want[i]
		if g.Key != w.Key || g.Total != w.Total || g.Practice != w.Practice ||
			g.PracticeUsers != w.PracticeUsers || !g.First.Equal(w.First) || !g.Last.Equal(w.Last) {
			t.Fatalf("group %d differs:\n merged %+v\n union  %+v", i, g, w)
		}
	}
}
