package prima

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"repro/internal/minidb"
	"repro/internal/scenario"
)

// durableHospital wires a System on disk: durable audit store plus a
// file-backed records table.
func durableHospital(t *testing.T, dir string) (*System, RecoveryStats) {
	t.Helper()
	sys, rs, err := Open(Config{Policy: scenario.PolicyStore(), Site: "s1"}, SystemOptions{
		Dir:   dir,
		Audit: DurableAuditOptions{CommitInterval: -1},
		DB:    minidb.StorageOptions{CommitInterval: -1},
	})
	if err != nil {
		t.Fatal(err)
	}
	step := 0
	sys.SetClock(func() time.Time { step++; return clock0.Add(time.Duration(step) * time.Second) })
	if len(sys.DB().TableNames()) == 0 {
		sys.DB().MustExec(`CREATE TABLE records (
			patient TEXT, address TEXT, prescription TEXT, referral TEXT, psychiatry TEXT, insurance TEXT
		) STORAGE file`)
		sys.DB().MustExec(`INSERT INTO records VALUES
			('p1', '1 Elm St',  'aspirin', 'cardio', 'none',    'acme-health'),
			('p2', '2 Oak Ave', 'statins', 'derm',   'anxiety', 'medicare'),
			('p3', '3 Pine Rd', 'insulin', 'endo',   'none',    'acme-health')`)
	}
	// Enforcement mappings are configuration, not state: register on
	// every open.
	if err := sys.RegisterTable(TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{
			"address": "address", "prescription": "prescription",
			"referral": "referral", "psychiatry": "psychiatry", "insurance": "insurance",
		},
	}); err != nil {
		t.Fatal(err)
	}
	return sys, rs
}

func auditJSONL(t *testing.T, entries []Entry) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := WriteAuditJSONL(&buf, entries); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestSystemOpenRecovery drives the full facade against disk: queries
// and break-glass accesses land in the durable audit store and the
// file-backed table, survive Close, and the reopened System resumes
// enforcement, coverage and refinement on the recovered state.
func TestSystemOpenRecovery(t *testing.T) {
	dir := t.TempDir()
	sys, rs := durableHospital(t, dir)
	if rs.CheckpointEntries != 0 || rs.WALEntries != 0 {
		t.Fatalf("fresh open recovered %d/%d entries", rs.CheckpointEntries, rs.WALEntries)
	}

	if _, _, err := sys.Query("tim", "nurse", "treatment", `SELECT referral FROM records`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Query("mark", "nurse", "registration", `SELECT referral FROM records`); !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	for _, u := range []string{"mark", "tim", "bob", "mark", "tim"} {
		if _, _, err := sys.BreakGlass(u, "nurse", "registration", "front desk backlog",
			`SELECT referral FROM records`); err != nil {
			t.Fatal(err)
		}
	}
	round, err := sys.RunRefinement(AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Adopted) == 0 {
		t.Fatal("refinement adopted nothing")
	}
	// Adopted pattern takes effect, producing one more audit entry.
	if _, _, err := sys.Query("mark", "nurse", "registration", `SELECT referral FROM records`); err != nil {
		t.Fatalf("post-adoption query: %v", err)
	}

	wantAudit := auditJSONL(t, sys.AuditLog().Snapshot())
	wantLen := sys.AuditLog().Len()
	if err := sys.SyncStorage(); err != nil {
		t.Fatal(err)
	}
	if err := sys.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: audit entries and clinical rows come back from disk.
	sys2, rs2 := durableHospital(t, dir)
	defer sys2.Close()
	if got := rs2.CheckpointEntries + rs2.WALEntries; got != wantLen {
		t.Fatalf("recovered %d audit entries, want %d", got, wantLen)
	}
	if got := auditJSONL(t, sys2.AuditLog().Snapshot()); !bytes.Equal(got, wantAudit) {
		t.Fatal("recovered audit log is not byte-identical")
	}
	res, err := sys2.DB().Exec(`SELECT patient FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("recovered records rows = %d, want 3", len(res.Rows))
	}

	// The recovered log serves coverage and another refinement round
	// (the adopted rule was not persisted with the policy, so the same
	// pattern is discoverable again).
	if _, err := sys2.EntryCoverage(); err != nil {
		t.Fatal(err)
	}
	round2, err := sys2.RunRefinement(AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round2.Adopted) == 0 {
		t.Fatal("refinement over recovered log adopted nothing")
	}

	// New accesses append on top of the recovered stream.
	if _, _, err := sys2.Query("tim", "nurse", "treatment", `SELECT referral FROM records`); err != nil {
		t.Fatal(err)
	}
	if sys2.AuditLog().Len() != wantLen+1 {
		t.Fatalf("audit len after reopen+query = %d, want %d", sys2.AuditLog().Len(), wantLen+1)
	}

	// Checkpoint bounds the next recovery: everything lands in the
	// JSONL checkpoint, nothing in the WAL tail.
	if err := sys2.CheckpointStorage(); err != nil {
		t.Fatal(err)
	}
	if err := sys2.Close(); err != nil {
		t.Fatal(err)
	}
	sys3, rs3 := durableHospital(t, dir)
	defer sys3.Close()
	if rs3.CheckpointEntries != wantLen+1 || rs3.WALEntries != 0 {
		t.Fatalf("post-checkpoint recovery = %d/%d, want %d/0",
			rs3.CheckpointEntries, rs3.WALEntries, wantLen+1)
	}
}

func TestSystemOpenNeedsDir(t *testing.T) {
	if _, _, err := Open(Config{}, SystemOptions{}); err == nil {
		t.Fatal("Open without Dir accepted")
	}
}
