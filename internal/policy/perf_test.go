package policy

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"repro/internal/vocab"
)

// TestPolicyIndexLargeStore exercises the key index over a store large
// enough that a linear-scan regression would be obvious: 10k rules
// built through FromRules, then interleaved Remove/Add, checking that
// the index, the rule slice and the version counter stay consistent.
func TestPolicyIndexLargeStore(t *testing.T) {
	const n = 10_000
	rules := make([]Rule, n)
	for i := range rules {
		rules[i] = MustRule(
			T("data", fmt.Sprintf("d%d", i)),
			T("purpose", fmt.Sprintf("p%d", i%97)),
			T("authorized", fmt.Sprintf("a%d", i%13)),
		)
	}
	// FromRules with every rule duplicated once: the duplicates must
	// all be dropped by the index, not appended.
	p := FromRules("PS", append(append([]Rule(nil), rules...), rules...)...)
	if p.Len() != n {
		t.Fatalf("Len = %d, want %d", p.Len(), n)
	}
	v0 := p.Version()
	if v0 == 0 {
		t.Fatal("version did not advance on construction")
	}

	for _, r := range rules {
		if !p.Contains(r) {
			t.Fatalf("missing rule %s", r)
		}
	}

	// Remove every third rule; swap-delete must keep the index in step
	// with the moved rules.
	removed := make(map[string]bool)
	for i := 0; i < n; i += 3 {
		if !p.Remove(rules[i]) {
			t.Fatalf("Remove(%s) = false", rules[i])
		}
		removed[rules[i].Key()] = true
	}
	if p.Remove(rules[0]) {
		t.Fatal("second Remove of the same rule succeeded")
	}
	if got, want := p.Len(), n-len(removed); got != want {
		t.Fatalf("Len after removals = %d, want %d", got, want)
	}
	if p.Version() <= v0 {
		t.Fatalf("version %d did not advance past %d", p.Version(), v0)
	}

	// The surviving rule set must agree between Contains (index) and
	// Rules (slice), with no duplicates.
	seen := make(map[string]bool)
	for _, r := range p.Rules() {
		k := r.Key()
		if removed[k] {
			t.Fatalf("removed rule %s still present", r)
		}
		if seen[k] {
			t.Fatalf("duplicate rule %s in Rules()", r)
		}
		seen[k] = true
		if !p.Contains(r) {
			t.Fatalf("Rules() has %s but Contains is false", r)
		}
	}
	for _, r := range rules {
		if removed[r.Key()] {
			if p.Contains(r) {
				t.Fatalf("Contains(%s) true after Remove", r)
			}
		} else if !seen[r.Key()] {
			t.Fatalf("surviving rule %s missing from Rules()", r)
		}
	}

	// Removed rules can be re-added.
	for i := 0; i < n; i += 3 {
		if !p.Add(rules[i]) {
			t.Fatalf("re-Add(%s) = false", rules[i])
		}
	}
	if p.Len() != n {
		t.Fatalf("Len after re-adds = %d, want %d", p.Len(), n)
	}
}

// TestSetRulesRebuildsIndex checks that SetRules replaces both the
// rule slice and the index wholesale.
func TestSetRulesRebuildsIndex(t *testing.T) {
	p := FromRules("PS",
		MustRule(T("data", "old1")),
		MustRule(T("data", "old2")),
	)
	next := []Rule{
		MustRule(T("data", "new1")),
		MustRule(T("data", "new2")),
		MustRule(T("data", "new1")), // duplicate
	}
	p.SetRules(next)
	if p.Len() != 2 {
		t.Fatalf("Len = %d, want 2", p.Len())
	}
	if p.Contains(MustRule(T("data", "old1"))) {
		t.Fatal("index still holds a replaced rule")
	}
	if !p.Contains(MustRule(T("data", "new2"))) {
		t.Fatal("index missing a new rule")
	}
}

// xorshift is a tiny deterministic generator so the property test can
// randomize vocabularies without pulling a rand dependency into the
// package under analysis.
type xorshift uint64

func (x *xorshift) next() uint64 {
	*x ^= *x << 13
	*x ^= *x >> 7
	*x ^= *x << 17
	return uint64(*x)
}

func (x *xorshift) intn(n int) int { return int(x.next() % uint64(n)) }

// randomVocabulary builds a three-attribute vocabulary with randomized
// branching so the parallel/sequential comparison sees many shapes.
func randomVocabulary(rng *xorshift) (*vocab.Vocabulary, map[string][]string) {
	v := vocab.New()
	values := make(map[string][]string)
	for _, attr := range []string{"data", "purpose", "authorized"} {
		h := v.MustAttribute(attr)
		root := attr + "-all"
		h.MustAdd("", root)
		values[attr] = append(values[attr], root)
		for i := 0; i < 2+rng.intn(3); i++ {
			mid := fmt.Sprintf("%s-m%d", attr, i)
			h.MustAdd(root, mid)
			values[attr] = append(values[attr], mid)
			for j := 0; j < 1+rng.intn(4); j++ {
				leaf := fmt.Sprintf("%s-m%d-l%d", attr, i, j)
				h.MustAdd(mid, leaf)
				values[attr] = append(values[attr], leaf)
			}
		}
	}
	return v, values
}

// TestParallelRangeMatchesSequential is the determinism property test:
// for randomized vocabularies and rule sets, the parallel range
// expansion must produce the same ground rules in the same order —
// and the same ErrRangeTooLarge decision — as the sequential one.
func TestParallelRangeMatchesSequential(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		rng := xorshift(seed * 0x9e3779b97f4a7c15)
		v, values := randomVocabulary(&rng)

		nRules := 1 + rng.intn(8)
		rules := make([]Rule, 0, nRules)
		for i := 0; i < nRules; i++ {
			var terms []Term
			for _, attr := range []string{"data", "purpose", "authorized"} {
				if rng.intn(4) == 0 && len(terms) > 0 {
					continue // drop an attribute sometimes
				}
				vs := values[attr]
				terms = append(terms, T(attr, vs[rng.intn(len(vs))]))
			}
			rules = append(rules, MustRule(terms...))
		}

		for _, limit := range []int{DefaultRangeLimit, 1 + rng.intn(40)} {
			seq, seqErr := newRangeSequential(rules, v, limit)
			par, parErr := newRangeParallel(rules, v, limit, 4)
			if (seqErr == nil) != (parErr == nil) {
				t.Fatalf("seed %d limit %d: error mismatch: seq=%v par=%v", seed, limit, seqErr, parErr)
			}
			if seqErr != nil {
				if !errors.Is(seqErr, ErrRangeTooLarge) || !errors.Is(parErr, ErrRangeTooLarge) {
					t.Fatalf("seed %d limit %d: unexpected errors seq=%v par=%v", seed, limit, seqErr, parErr)
				}
				continue
			}
			if seq.Len() != par.Len() {
				t.Fatalf("seed %d limit %d: Len %d != %d", seed, limit, seq.Len(), par.Len())
			}
			// Same derivation order...
			for i, r := range seq.Rules() {
				if pr := par.Rules()[i]; pr.Key() != r.Key() {
					t.Fatalf("seed %d limit %d: rule %d order mismatch: %s != %s", seed, limit, i, r, pr)
				}
			}
			// ...and same key set.
			sk, pk := seq.Keys(), par.Keys()
			for i := range sk {
				if sk[i] != pk[i] {
					t.Fatalf("seed %d limit %d: key %d mismatch: %q != %q", seed, limit, i, sk[i], pk[i])
				}
			}
		}
	}
}

// TestConcurrentPolicyMutationAndRange hammers the policy store and
// the shared range cache from many goroutines. Run with -race.
func TestConcurrentPolicyMutationAndRange(t *testing.T) {
	v := vocab.Sample()
	p := New("PS")
	base := MustRule(T("data", "referral"), T("purpose", "registration"), T("authorized", "nurse"))
	p.Add(base)

	const workers = 8
	const rounds = 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := MustRule(
				T("data", "prescription"),
				T("purpose", "billing"),
				T("authorized", fmt.Sprintf("role%d", w)),
			)
			for i := 0; i < rounds; i++ {
				switch i % 4 {
				case 0:
					p.Add(r)
				case 1:
					p.Contains(r)
					p.Version()
				case 2:
					if _, err := Shared.Range(p, v, 0); err != nil {
						t.Error(err)
						return
					}
				case 3:
					p.Remove(r)
				}
			}
		}(w)
	}
	wg.Wait()

	// The cache must converge to the final store contents.
	rg, err := Shared.Range(p, v, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !rg.Contains(base) {
		t.Fatal("final range lost the base rule")
	}
}
