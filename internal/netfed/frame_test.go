package netfed

import (
	"bytes"
	"errors"
	"io"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"repro/internal/audit"
)

// genEntries builds n deterministic entries with repeated field values
// (the dictionary's case) plus occasional sites and reasons.
func genEntries(seed int64, n int) []audit.Entry {
	rng := rand.New(rand.NewSource(seed))
	base := time.Unix(1700000000, 0).UTC()
	users := []string{"alice", "bob", "carol", "dave", "erin", "frank"}
	data := []string{"referral", "psychiatry", "lab results", "billing"}
	purposes := []string{"treatment", "research", "billing"}
	roles := []string{"nurse", "physician", "clerk"}
	out := make([]audit.Entry, n)
	for i := range out {
		st, op := audit.Regular, audit.Allow
		switch rng.Intn(4) {
		case 0:
			st = audit.Exception
		case 1:
			op = audit.Deny
		}
		e := audit.Entry{
			Time:       base.Add(time.Duration(rng.Intn(600)) * time.Minute),
			Op:         op,
			User:       users[rng.Intn(len(users))],
			Data:       data[rng.Intn(len(data))],
			Purpose:    purposes[rng.Intn(len(purposes))],
			Authorized: roles[rng.Intn(len(roles))],
			Status:     st,
		}
		if rng.Intn(3) == 0 {
			e.Site = "site-a"
		}
		if st == audit.Exception && rng.Intn(2) == 0 {
			e.Reason = "emergency access"
		}
		out[i] = e
	}
	return out
}

func TestFrameRoundTrip(t *testing.T) {
	payloads := [][]byte{nil, {}, {0}, []byte("hello"), bytes.Repeat([]byte{0xAB}, 100000)}
	for _, p := range payloads {
		for typ := byte(1); typ <= 5; typ++ {
			b := AppendFrame(nil, typ, p)
			gotTyp, gotPayload, n, err := DecodeFrame(b)
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			if gotTyp != typ || n != len(b) || !bytes.Equal(gotPayload, p) {
				t.Fatalf("round trip mismatch: typ %d/%d, n %d/%d", gotTyp, typ, n, len(b))
			}
		}
	}
}

func TestFrameDecodeTruncatedAndCorrupt(t *testing.T) {
	b := AppendFrame(nil, MsgBatch, []byte("payload bytes"))
	for i := 0; i < len(b); i++ {
		if _, _, _, err := DecodeFrame(b[:i]); err != io.ErrUnexpectedEOF {
			t.Fatalf("truncated at %d: err = %v, want ErrUnexpectedEOF", i, err)
		}
	}
	for i := 0; i < len(b); i++ {
		mut := append([]byte(nil), b...)
		mut[i] ^= 0xFF
		_, _, _, err := DecodeFrame(mut)
		if err == nil {
			t.Fatalf("flip at %d: corrupt frame decoded cleanly", i)
		}
	}
	// A hostile length prefix is rejected before allocation.
	huge := []byte{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0x0F}
	if _, _, _, err := DecodeFrame(huge); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("huge length: err = %v, want ErrFrameTooLarge", err)
	}
}

// fragReader hands out at most frag bytes per Read to exercise the
// FrameReader's refill and compaction paths.
type fragReader struct {
	b    []byte
	frag int
}

func (f *fragReader) Read(p []byte) (int, error) {
	if len(f.b) == 0 {
		return 0, io.EOF
	}
	n := f.frag
	if n > len(f.b) {
		n = len(f.b)
	}
	if n > len(p) {
		n = len(p)
	}
	copy(p, f.b[:n])
	f.b = f.b[n:]
	return n, nil
}

func TestFrameReaderFragmented(t *testing.T) {
	var stream []byte
	var want [][]byte
	for i := 0; i < 40; i++ {
		p := bytes.Repeat([]byte{byte(i)}, i*137)
		want = append(want, p)
		stream = AppendFrame(stream, MsgBatch, p)
	}
	for _, frag := range []int{1, 3, 64, 1 << 16} {
		fr := NewFrameReader(&fragReader{b: stream, frag: frag})
		for i := range want {
			typ, payload, err := fr.Next()
			if err != nil {
				t.Fatalf("frag %d frame %d: %v", frag, i, err)
			}
			if typ != MsgBatch || !bytes.Equal(payload, want[i]) {
				t.Fatalf("frag %d frame %d: payload mismatch", frag, i)
			}
		}
		if _, _, err := fr.Next(); err != io.EOF {
			t.Fatalf("frag %d: end err = %v, want EOF", frag, err)
		}
	}
	// A stream torn inside a frame is ErrUnexpectedEOF, not EOF.
	fr := NewFrameReader(&fragReader{b: stream[:len(stream)-3], frag: 7})
	var err error
	for err == nil {
		_, _, err = fr.Next()
	}
	if err != io.ErrUnexpectedEOF {
		t.Fatalf("torn stream: err = %v, want ErrUnexpectedEOF", err)
	}
}

func TestBatchCodecRoundTrip(t *testing.T) {
	entries := genEntries(3, 1000)
	enc := NewEncoder()
	payload := enc.AppendBatch(nil, 17, entries)
	dec := NewDecoder()
	base, got, err := dec.DecodeBatch(payload)
	if err != nil {
		t.Fatal(err)
	}
	if base != 17 {
		t.Fatalf("base = %d, want 17", base)
	}
	if !reflect.DeepEqual(got, entries) {
		t.Fatalf("decoded entries differ from input")
	}
	// Re-encoding the decode is byte-identical: the codec has one
	// canonical form.
	again := NewEncoder().AppendBatch(nil, base, got)
	if !bytes.Equal(again, payload) {
		t.Fatal("re-encode is not byte-identical")
	}
	// Encoder state fully resets between batches.
	second := enc.AppendBatch(nil, 17, entries)
	if !bytes.Equal(second, payload) {
		t.Fatal("encoder reuse changed the encoding")
	}
}

func TestBatchCodecEmptyAndHostile(t *testing.T) {
	enc := NewEncoder()
	payload := enc.AppendBatch(nil, 1, nil)
	if base, got, err := NewDecoder().DecodeBatch(payload); err != nil || base != 1 || len(got) != 0 {
		t.Fatalf("empty batch: base %d, %d entries, err %v", base, len(got), err)
	}
	hostile := [][]byte{
		nil,
		{0x01},                         // base only
		{0x01, 0xFF, 0xFF, 0xFF, 0x7F}, // absurd count
		append(enc.AppendBatch(nil, 1, genEntries(1, 3)), 0x00), // trailing byte
	}
	// A count that passes MaxBatchEntries but exceeds the remaining
	// bytes must be rejected before allocation.
	big := make([]byte, 0, 8)
	big = append(big, 0x01)       // base
	big = append(big, 0x80, 0x02) // count = 256, but no bytes follow
	hostile = append(hostile, big)
	for i, b := range hostile {
		if _, _, err := NewDecoder().DecodeBatch(b); err == nil {
			t.Fatalf("hostile %d decoded cleanly", i)
		}
	}
	// Truncations of a valid batch never decode cleanly to the full
	// count and never panic.
	valid := enc.AppendBatch(nil, 5, genEntries(9, 50))
	for i := 0; i < len(valid); i++ {
		NewDecoder().DecodeBatch(valid[:i])
	}
}

func TestHandshakeMessages(t *testing.T) {
	h := hello{version: ProtocolVersion, site: "general-hospital"}
	got, err := parseHello(appendHello(nil, h))
	if err != nil || got != h {
		t.Fatalf("hello round trip: %+v, %v", got, err)
	}
	a := helloAck{version: 1, resume: 1 << 40, window: 32}
	gotAck, err := parseHelloAck(appendHelloAck(nil, a))
	if err != nil || gotAck != a {
		t.Fatalf("helloAck round trip: %+v, %v", gotAck, err)
	}
	seq, err := parseAck(appendAck(nil, 987654321))
	if err != nil || seq != 987654321 {
		t.Fatalf("ack round trip: %d, %v", seq, err)
	}
	for _, b := range [][]byte{nil, {0xFF}, append(appendHello(nil, h), 0x01)} {
		if _, err := parseHello(b); err == nil {
			t.Fatal("malformed hello parsed cleanly")
		}
	}
	if _, err := parseHello(appendHello(nil, hello{version: 1, site: string(make([]byte, maxSiteName+1))})); err == nil {
		t.Fatal("oversized site name parsed cleanly")
	}
}
