package audit

import (
	"fmt"
	"sort"

	"repro/internal/vocab"
)

// Federation consolidates several site audit logs into one consistent
// view (paper §4.2: "these logs are either periodically replicated or
// PRIMA-enabled, by the construction of a consistent consolidated view
// of them"). Consolidation merges chronologically, removes duplicate
// replicas of the same event, and reports conflicts — replicas that
// share an identity instant but disagree on the recorded outcome,
// which indicates clock or logging faults at a site.
type Federation struct {
	sources []TimeSource
}

// TimeSource is a consolidation input: anything that can produce its
// entries in chronological order (same-instant entries in append
// order). *Log serves it from memory; *Durable serves it from the
// persistent (time, status, seq) index plus the un-checkpointed tail.
type TimeSource interface {
	SnapshotByTime() []Entry
}

// NewFederation builds a federation over the given source logs.
func NewFederation(sources ...*Log) *Federation {
	f := &Federation{}
	for _, l := range sources {
		f.AddSource(l)
	}
	return f
}

// AddSource registers an additional source log.
func (f *Federation) AddSource(l *Log) { f.sources = append(f.sources, l) }

// AddTimeSource registers any TimeSource (e.g. a durable store) as a
// consolidation input.
func (f *Federation) AddTimeSource(src TimeSource) { f.sources = append(f.sources, src) }

// Sources returns the number of federated logs.
func (f *Federation) Sources() int { return len(f.sources) }

// Conflict records two same-instant, same-actor, same-object entries
// whose outcomes disagree across sites.
type Conflict struct {
	A, B Entry
}

// String renders the conflict.
func (c Conflict) String() string {
	return fmt.Sprintf("conflict between site %q and site %q: %s vs %s", c.A.Site, c.B.Site, c.A, c.B)
}

// Result is the outcome of a consolidation.
type Result struct {
	Entries    []Entry    // merged, chronological, deduplicated
	Duplicates int        // identical replicas removed
	Conflicts  []Conflict // same event identity, different outcome
}

// mergeCursor is one source log's sorted entries plus the read
// position; src is the source index, the deterministic tie-break.
type mergeCursor struct {
	entries []Entry
	pos     int
	src     int
}

// cursorHeap is a min-heap of cursors ordered by the timestamp of
// their next entry, ties broken by source index — exactly the order
// the linear best-cursor scan produced (the first source with the
// minimal time wins), so the consolidated view is unchanged. The
// sift-down is typed and hand-rolled: the merge loop only ever fixes
// the root or removes it, so the container/heap interface (and its
// per-operation any boxing) bought nothing.
type cursorHeap []*mergeCursor

func (h cursorHeap) less(i, j int) bool {
	ti, tj := h[i].entries[h[i].pos].Time, h[j].entries[h[j].pos].Time
	if ti.Equal(tj) {
		return h[i].src < h[j].src
	}
	return ti.Before(tj)
}

// siftDown restores the heap property below i after h[i] changed.
func (h cursorHeap) siftDown(i int) {
	for {
		left := 2*i + 1
		if left >= len(h) {
			return
		}
		least := left
		if right := left + 1; right < len(h) && h.less(right, left) {
			least = right
		}
		if !h.less(least, i) {
			return
		}
		h[i], h[least] = h[least], h[i]
		i = least
	}
}

// init heapifies in place.
func (h cursorHeap) init() {
	for i := len(h)/2 - 1; i >= 0; i-- {
		h.siftDown(i)
	}
}

// popRoot removes the root cursor (its source is exhausted).
func (h *cursorHeap) popRoot() {
	old := *h
	n := len(old)
	old[0] = old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	(*h).siftDown(0)
}

// replicaKey is the identity of an entry within one instant: two
// same-instant entries with equal replicaKeys are replicas of the same
// event. The timestamp is not part of the key — the merge emits
// entries in time order, so dedup state is scoped to the current
// instant and cleared when time advances. A comparable struct key
// replaces the per-row string formatting of the previous
// implementation.
type replicaKey struct {
	op         Op
	user       string
	data       string
	purpose    string
	authorized string
	status     Status
}

// eventKey is the same-instant identity without the outcome, for
// conflict detection.
type eventKey struct {
	user    string
	data    string
	purpose string
}

// Consolidate builds the consolidated view. The merge is a k-way merge
// by timestamp over a min-heap of source cursors; each source log
// produces its entries pre-sorted through SnapshotByTime (per-shard
// sorted runs merged by the sharded store itself), so out-of-order
// appends at a site are tolerated. Entries that are byte-identical in
// the seven schema columns are treated as replicas of the same event
// and collapsed; entries that agree on (time, user, data, purpose)
// but disagree on op or status are kept and reported as conflicts.
func (f *Federation) Consolidate() Result {
	snapshots := make([][]Entry, len(f.sources))
	total := 0
	for i, src := range f.sources {
		snapshots[i] = src.SnapshotByTime()
		total += len(snapshots[i])
	}

	h := make(cursorHeap, 0, f.Sources())
	for i, es := range snapshots {
		if len(es) > 0 {
			h = append(h, &mergeCursor{entries: es, src: i})
		}
	}
	h.init()

	var res Result
	res.Entries = make([]Entry, 0, total)
	// Dedup and conflict state is scoped to the current instant: the
	// merge emits entries in time order and both identities include
	// the timestamp, so entries at different instants can never
	// collide. The window maps stay as small as the widest instant
	// instead of growing to the full consolidated size.
	seen := make(map[replicaKey]bool)
	byEvent := make(map[eventKey]int) // -> index into res.Entries
	var curUnix int64
	window := false

	for len(h) > 0 {
		c := h[0]
		e := c.entries[c.pos]
		c.pos++
		if c.pos >= len(c.entries) {
			h.popRoot()
		} else {
			h.siftDown(0)
		}

		unix := e.Time.UnixNano()

		// Solo-instant fast path: when no already-emitted entry shares
		// this instant (previous instant differs) and no upcoming entry
		// can (the heap emits in time order, so it suffices to peek the
		// next minimum), the entry can neither be a replica nor a
		// conflict — emit it without touching the window maps.
		if (!window || unix != curUnix) &&
			(len(h) == 0 || !h[0].entries[h[0].pos].Time.Equal(e.Time)) {
			window = false
			curUnix = unix
			res.Entries = append(res.Entries, e)
			continue
		}

		if !window || unix != curUnix {
			window = true
			curUnix = unix
			clear(seen)
			clear(byEvent)
		}

		rk := replicaKey{
			op:   e.Op,
			user: vocab.Norm(e.User), data: vocab.Norm(e.Data),
			purpose: vocab.Norm(e.Purpose), authorized: vocab.Norm(e.Authorized),
			status: e.Status,
		}
		if seen[rk] {
			res.Duplicates++
			continue
		}
		seen[rk] = true

		ek := eventKey{user: e.User, data: e.Data, purpose: e.Purpose}
		if i, ok := byEvent[ek]; ok && (res.Entries[i].Op != e.Op || res.Entries[i].Status != e.Status) {
			res.Conflicts = append(res.Conflicts, Conflict{A: res.Entries[i], B: e})
		} else {
			byEvent[ek] = len(res.Entries)
		}
		res.Entries = append(res.Entries, e)
	}
	return res
}

// ConsolidateLog consolidates into a fresh Log named site.
func (f *Federation) ConsolidateLog(site string) (*Log, Result) {
	res := f.Consolidate()
	l := NewLog(site)
	// Entries already validated at their sources; bulkLoad shards and
	// indexes them while preserving the consolidated order as the new
	// log's append order.
	l.bulkLoad(res.Entries)
	return l, res
}

// BySite groups entries by their site identifier, sorted site order.
func BySite(entries []Entry) map[string][]Entry {
	out := make(map[string][]Entry)
	for _, e := range entries {
		out[e.Site] = append(out[e.Site], e)
	}
	return out
}

// Sites lists the distinct site identifiers in entries, sorted.
func Sites(entries []Entry) []string {
	set := make(map[string]bool)
	for _, e := range entries {
		set[e.Site] = true
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
