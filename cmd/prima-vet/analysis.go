package main

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one diagnostic produced by an analyzer.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// String renders the finding in the conventional file:line: form.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}

// Analyzer is one table-driven check. Adding a rule is one more
// struct literal in the analyzers slice. Per-package analyzers set
// Run; interprocedural analyzers set RunProgram and see the whole
// loaded module at once (call graph, markers, every package).
type Analyzer struct {
	Name       string
	Doc        string
	Run        func(*Package) []Finding
	RunProgram func(*Program) []Finding
}

// analyzers is the registry prima-vet runs, in order.
var analyzers = []*Analyzer{
	lockcheckAnalyzer,
	purityAnalyzer,
	errcheckAnalyzer,
	codecpairAnalyzer,
	lockorderAnalyzer,
	phileakAnalyzer,
	arenasafeAnalyzer,
	atomicsafeAnalyzer,
	goleakAnalyzer,
	chanuseAnalyzer,
}

// selectAnalyzers resolves a -run list ("lockorder,phileak") against
// the registry. Unknown names are an error, never a silent no-op.
func selectAnalyzers(runList string) ([]*Analyzer, error) {
	if runList == "" {
		return analyzers, nil
	}
	byName := make(map[string]*Analyzer, len(analyzers))
	for _, a := range analyzers {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(runList, ",") {
		name = strings.TrimSpace(name)
		if name == "" {
			continue
		}
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("prima-vet: unknown analyzer %q (see -list)", name)
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("prima-vet: -run selected no analyzers")
	}
	return out, nil
}

// runAnalyzers applies every per-package analyzer to the package and
// returns the findings sorted by position.
func runAnalyzers(p *Package) []Finding {
	return runSelected(analyzers, p)
}

// runSelected applies the chosen per-package analyzers to one package.
func runSelected(selected []*Analyzer, p *Package) []Finding {
	var out []Finding
	for _, a := range selected {
		if a.Run != nil {
			out = append(out, a.Run(p)...)
		}
	}
	sortFindings(out)
	return out
}

// runProgramAnalyzers applies the chosen interprocedural analyzers to
// the whole program, keeping only findings inside requested packages.
func runProgramAnalyzers(selected []*Analyzer, prog *Program) []Finding {
	var out []Finding
	for _, a := range selected {
		if a.RunProgram != nil {
			out = append(out, prog.reported(a.RunProgram(prog))...)
		}
	}
	sortFindings(out)
	return out
}

func sortFindings(out []Finding) {
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pos.Filename != out[j].Pos.Filename {
			return out[i].Pos.Filename < out[j].Pos.Filename
		}
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Analyzer < out[j].Analyzer
	})
}

// ---- shared AST/type helpers ----

// funcDecls yields every function declaration in the package's
// non-test files.
func funcDecls(p *Package) []*ast.FuncDecl {
	var out []*ast.FuncDecl
	for _, f := range p.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				out = append(out, fd)
			}
		}
	}
	return out
}

// recvIdent returns the receiver identifier of a method, or nil.
func recvIdent(fd *ast.FuncDecl) *ast.Ident {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return nil
	}
	return fd.Recv.List[0].Names[0]
}

// recvTypeName returns the name of the receiver's base type ("Log"
// for *Log), or "".
func recvTypeName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	switch x := t.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.IndexExpr: // generic receiver T[P]
		if id, ok := x.X.(*ast.Ident); ok {
			return id.Name
		}
	}
	return ""
}

// isPkgCall reports whether call is pkgName.funcName(...) resolved
// through the file's imports (AST level; works even when type
// information is incomplete).
func isPkgCall(p *Package, call *ast.CallExpr, pkgPath, funcName string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != funcName {
		return false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	if obj, ok := p.Info.Uses[id]; ok {
		if pn, ok := obj.(*types.PkgName); ok {
			return pn.Imported().Path() == pkgPath
		}
		return false
	}
	// Fallback without type info: match the default package name.
	base := pkgPath
	if i := strings.LastIndexByte(base, '/'); i >= 0 {
		base = base[i+1:]
	}
	return id.Name == base
}

// usesImport reports whether any file imports the given path.
func usesImport(p *Package, path string) bool {
	for _, f := range p.Files {
		for _, imp := range f.Imports {
			if strings.Trim(imp.Path.Value, `"`) == path {
				return true
			}
		}
	}
	return false
}

// isMapType reports whether the expression has map type, using type
// information when present and falling back to a make(map[...]) or
// composite-literal syntactic check.
func isMapType(p *Package, e ast.Expr) bool {
	if tv, ok := p.Info.Types[e]; ok && tv.Type != nil {
		_, isMap := tv.Type.Underlying().(*types.Map)
		return isMap
	}
	return false
}

// exprString renders a (small) expression for messages.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.CallExpr:
		return exprString(x.Fun) + "(...)"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	default:
		return "expr"
	}
}
