package hdb

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/core"
)

// TestConcurrentQueriesAndRefinement exercises the live policy-update
// path: readers hammer Query/BreakGlass while a refinement loop
// adopts rules into the shared policy store. Run with -race.
func TestConcurrentQueriesAndRefinement(t *testing.T) {
	enf, _, log := fixture(t)
	// The fixture's stepping clock is not goroutine-safe; swap in a
	// locked one.
	enf.SetClock(timeNowSafe())

	const workers = 8
	const rounds = 50
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)

	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			p := Principal{User: "worker", Role: "nurse"}
			for i := 0; i < rounds; i++ {
				_, _, err := enf.Query(p, "registration", `SELECT referral FROM records`)
				if err != nil && !errors.Is(err, ErrDenied) {
					errs <- err
					return
				}
				if errors.Is(err, ErrDenied) {
					if _, _, err := enf.BreakGlass(p, "registration", "load test",
						`SELECT referral FROM records`); err != nil {
						errs <- err
						return
					}
				}
			}
		}(w)
	}

	// Concurrent refinement: adopt from whatever the log holds.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := core.NewSession(enf.Policy(), enf.v, core.Options{MinSupport: 3, MinDistinctUsers: 1})
		for i := 0; i < 10; i++ {
			if _, err := sess.Run(log.Snapshot(), core.AdoptAll); err != nil {
				errs <- err
				return
			}
		}
	}()

	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	// Every audit entry valid; totals consistent.
	for _, e := range log.Snapshot() {
		if err := e.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	st := audit.Summarize(log.Snapshot())
	if st.Total == 0 {
		t.Fatal("no audit entries recorded")
	}
}

// timeNowSafe returns a race-free monotonically increasing clock.
func timeNowSafe() func() time.Time {
	var mu sync.Mutex
	base := t0
	return func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		base = base.Add(time.Millisecond)
		return base
	}
}
