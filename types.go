package prima

import (
	"io"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/core"
	"repro/internal/hdb"
	"repro/internal/lint"
	"repro/internal/mining"
	"repro/internal/policy"
	"repro/internal/vocab"
	"repro/internal/workflow"
)

// Re-exported model types, so applications can work entirely against
// the prima package.
type (
	// Vocabulary is the privacy policy vocabulary (paper Figure 1).
	Vocabulary = vocab.Vocabulary
	// Term is a RuleTerm (Definition 1).
	Term = policy.Term
	// Rule is a conjunction of RuleTerms (Definition 5).
	Rule = policy.Rule
	// Policy is a collection of rules (Definition 7).
	Policy = policy.Policy

	// Entry is one audit record in the paper's §4.2 schema.
	Entry = audit.Entry
	// Log is an append-only audit log.
	Log = audit.Log
	// Federation consolidates several site logs (paper §4.2).
	Federation = audit.Federation
	// DurableAuditOptions tunes the durable audit store (SystemOptions.Audit).
	DurableAuditOptions = audit.DurableOptions
	// RecoveryStats reports what Open rebuilt from disk.
	RecoveryStats = audit.RecoveryStats

	// Pattern is a refinement candidate (Algorithms 4–6).
	Pattern = core.Pattern
	// RefineOptions parameterizes refinement (f, c, extractor).
	RefineOptions = core.Options
	// PatternExtractor is the pluggable data-analysis interface of
	// Algorithm 4 (RefineOptions.Extractor).
	PatternExtractor = core.PatternExtractor
	// Round records one refinement round.
	Round = core.Round
	// Reviewer decides the fate of discovered patterns.
	Reviewer = core.Reviewer
	// ReviewerFunc adapts a function to Reviewer.
	ReviewerFunc = core.ReviewerFunc
	// Decision is a reviewer verdict.
	Decision = core.Decision
	// CoverageReport is the detailed outcome of Algorithm 1.
	CoverageReport = core.Report
	// GeneralizeResult reports a policy generalization pass.
	GeneralizeResult = core.GeneralizeResult
	// PatternEvidence is the behavioural evidence behind a pattern.
	PatternEvidence = core.Evidence
	// EntryCoverageReport is row-level coverage (§5 counting).
	EntryCoverageReport = core.EntryReport

	// Principal identifies a requesting user and role.
	Principal = hdb.Principal
	// TableMapping maps table columns to data categories.
	TableMapping = hdb.TableMapping
	// Access describes an enforced query's outcome.
	Access = hdb.Access

	// ConsentChoice is a recorded consent decision.
	ConsentChoice = consent.Choice

	// SimConfig parameterizes the clinical workflow simulator.
	SimConfig = workflow.Config
	// Simulator generates synthetic clinical audit trails.
	Simulator = workflow.Simulator
	// Behavior is one recurring access habit in a simulation.
	Behavior = workflow.Behavior
	// Staff is a roster member.
	Staff = workflow.Staff
	// ExtractionScore is precision/recall against ground truth.
	ExtractionScore = workflow.Score

	// LintFinding is one diagnostic from the policy-store linter.
	LintFinding = lint.Finding
	// LintReport is the outcome of linting a policy against a vocabulary.
	LintReport = lint.Report
	// LintOptions parameterizes a lint pass (oracle path, PL008 threshold).
	LintOptions = lint.Options
)

// Reviewer decisions.
const (
	Adopt       = core.Adopt
	Reject      = core.Reject
	Investigate = core.Investigate
)

// Consent choices.
const (
	OptIn  = consent.OptIn
	OptOut = consent.OptOut
)

// Audit schema constants.
const (
	OpAllow         = audit.Allow
	OpDeny          = audit.Deny
	StatusRegular   = audit.Regular
	StatusException = audit.Exception
)

// ErrDenied is returned by Query when policy forbids the access; the
// caller may retry via BreakGlass.
var ErrDenied = hdb.ErrDenied

// AdoptAll is a Reviewer accepting every pattern.
var AdoptAll = core.AdoptAll

// SampleVocabulary returns the paper's Figure 1 vocabulary.
func SampleVocabulary() *Vocabulary { return vocab.Sample() }

// SyntheticVocabulary builds a SNOMED/ICD-scale benchmark vocabulary:
// a complete branch-ary data hierarchy of the given depth next to the
// paper's purpose and authorized hierarchies.
func SyntheticVocabulary(branch, depth int) *Vocabulary { return vocab.Synthetic(branch, depth) }

// ParseVocabulary reads a vocabulary in the indented text format.
func ParseVocabulary(r io.Reader) (*Vocabulary, error) { return vocab.ParseText(r) }

// NewVocabulary returns an empty vocabulary.
func NewVocabulary() *Vocabulary { return vocab.New() }

// ParseRule parses "attr=value & attr=value" into a Rule.
func ParseRule(s string) (Rule, error) { return policy.ParseRule(s) }

// MustRule builds a rule from terms, panicking on error.
func MustRule(terms ...Term) Rule { return policy.MustRule(terms...) }

// T constructs a Term.
func T(attr, value string) Term { return policy.T(attr, value) }

// NewPolicy returns an empty named policy.
func NewPolicy(name string) *Policy { return policy.New(name) }

// ParsePolicy reads a policy: one compact rule per line.
func ParsePolicy(name string, r io.Reader) (*Policy, error) { return policy.ParsePolicy(name, r) }

// ComputeCoverage is Algorithm 1 (Definition 9).
func ComputeCoverage(px, py *Policy, v *Vocabulary) (float64, error) {
	return core.ComputeCoverage(px, py, v)
}

// CoverageDetail computes coverage with per-gap explanations.
func CoverageDetail(px, py *Policy, v *Vocabulary) (*CoverageReport, error) {
	return core.Coverage(px, py, v)
}

// EntryCoverage computes row-level coverage over an audit snapshot.
func EntryCoverage(ps *Policy, entries []Entry, v *Vocabulary) (*EntryCoverageReport, error) {
	return core.EntryCoverage(ps, entries, v)
}

// Refine runs Algorithm 2 (Filter → ExtractPatterns → Prune) over an
// audit snapshot without adopting anything.
func Refine(ps *Policy, entries []Entry, v *Vocabulary, opts RefineOptions) ([]Pattern, error) {
	return core.Refinement(ps, entries, v, opts)
}

// Generalize rewrites a policy into an equivalent smaller one over
// the vocabulary (same range, fewer and more abstract rules).
func Generalize(ps *Policy, v *Vocabulary) (*GeneralizeResult, error) {
	return core.Generalize(ps, v)
}

// GatherEvidence computes the behavioural evidence (user
// concentration, off-hours activity, suspicion score) for a pattern
// rule over practice entries.
func GatherEvidence(practice []Entry, rule Rule) PatternEvidence {
	return core.GatherEvidence(practice, rule)
}

// SuspicionReviewer builds a reviewer that auto-adopts low-suspicion
// patterns, investigates mid-range ones and rejects violation-shaped
// ones.
func SuspicionReviewer(practice []Entry, investigateAt, rejectAt float64) Reviewer {
	return core.SuspicionReviewer(practice, investigateAt, rejectAt)
}

// NewLog returns an empty audit log for the named site.
func NewLog(site string) *Log { return audit.NewLog(site) }

// NewFederation builds an audit federation over source logs.
func NewFederation(sources ...*Log) *Federation { return audit.NewFederation(sources...) }

// ReadAuditJSONL / WriteAuditJSONL are the audit JSON Lines codec.
func ReadAuditJSONL(r io.Reader) ([]Entry, error)        { return audit.ReadJSONL(r) }
func WriteAuditJSONL(w io.Writer, entries []Entry) error { return audit.WriteJSONL(w, entries) }

// ReadAuditCSV / WriteAuditCSV are the Table 1-layout CSV codec.
func ReadAuditCSV(r io.Reader) ([]Entry, error)        { return audit.ReadCSV(r) }
func WriteAuditCSV(w io.Writer, entries []Entry) error { return audit.WriteCSV(w, entries) }

// EntriesToPolicy projects audit rows to the ground policy P_AL.
func EntriesToPolicy(name string, entries []Entry) *Policy { return audit.ToPolicy(name, entries) }

// MiningExtractor returns the Apriori-backed pattern extractor
// (paper §5's proposed upgrade) for use in RefineOptions.Extractor.
func MiningExtractor(keepPartial bool) core.PatternExtractor {
	return mining.Extractor{KeepPartial: keepPartial}
}

// FPGrowthExtractor returns the FP-growth pattern extractor: same
// output as MiningExtractor (differentially tested), built for audit
// scale — parallel per-shard tree construction and incremental
// streaming epochs. workers <= 0 sizes the pattern-growth pool to
// GOMAXPROCS.
func FPGrowthExtractor(keepPartial bool, workers int) core.PatternExtractor {
	return mining.FPGrowth{KeepPartial: keepPartial, Workers: workers}
}

// NewSimulator builds a clinical workflow simulator.
func NewSimulator(cfg SimConfig) (*Simulator, error) { return workflow.New(cfg) }

// DefaultHospital returns a ready-to-run hospital simulation config.
func DefaultHospital(seed int64) SimConfig { return workflow.DefaultHospital(seed) }

// EvaluateExtraction scores found rules against ground truth.
func EvaluateExtraction(found, informal, violations []Rule) ExtractionScore {
	return workflow.Evaluate(found, informal, violations)
}

// Lint statically analyzes a policy store against a vocabulary,
// reporting unknown attributes/values, empty-Range rules,
// duplicate/subsumed/conflicting/over-broad rules, and unreachable
// vocabulary subtrees.
func Lint(p *Policy, v *Vocabulary) LintReport { return lint.Policy(p, v) }

// LintOpts is Lint with explicit options.
func LintOpts(p *Policy, v *Vocabulary, opts LintOptions) LintReport {
	return lint.PolicyOpts(p, v, opts)
}

// SetSymbolicCoverage selects the symbolic (true, default) or
// materializing coverage path for ComputeCoverage, EntryCoverage, and
// refinement pruning, returning the previous setting.
func SetSymbolicCoverage(on bool) bool { return core.SetSymbolicCoverage(on) }

// SymbolicRangeCard returns #Range_P computed symbolically — exact at
// any vocabulary scale, never materializing a ground rule.
func SymbolicRangeCard(p *Policy, v *Vocabulary) int64 {
	return policy.SharedSym.Range(p, v).Card()
}
