package netfed

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/audit"
)

// Binary batch codec for audit entries. The JSON sink encoder spends
// most of its per-entry budget re-emitting the same field bytes (an
// audit stream repeats users, categories, purposes and roles heavily);
// the wire codec replaces that with a per-batch string dictionary —
// the first occurrence of a string travels as a length-prefixed
// literal and defines the next dictionary id, every repeat is one
// uvarint — plus zigzag-delta timestamps and a packed op/status flag
// byte. Sequence numbers never travel per entry: a batch is the
// contiguous range [BaseSeq, BaseSeq+len(Entries)).
//
// Decoding is strict: every read is bounds-checked, counts and string
// lengths are validated against the remaining payload, and a batch
// either decodes completely or fails with an error — never a panic,
// never an over-read (FuzzEntryCodec pins this).

// MaxBatchEntries bounds the declared entry count of one batch; a
// hostile count cannot force a large allocation because it is checked
// against both this cap and the bytes actually remaining.
const MaxBatchEntries = 1 << 17

// Batch codec errors.
var (
	ErrBatchCorrupt = errors.New("netfed: corrupt entry batch")
	errBatchSize    = errors.New("netfed: batch entry count out of range")
)

// entry flag bits.
const (
	flagAllow     = 1 << 0 // Op == audit.Allow
	flagRegular   = 1 << 1 // Status == audit.Regular
	flagHasSite   = 1 << 2
	flagHasReason = 1 << 3
)

// Encoder carries the per-batch dictionary state so repeated encodes
// reuse one map allocation. Not safe for concurrent use; each
// streamer connection owns one.
type Encoder struct {
	dict map[string]uint64
}

// NewEncoder returns an Encoder ready for AppendBatch.
func NewEncoder() *Encoder {
	return &Encoder{dict: make(map[string]uint64, 256)}
}

// appendString emits one dictionary-coded string: id+1 for a repeat,
// 0 followed by the length-prefixed literal for a first occurrence
// (which takes the next id).
func (enc *Encoder) appendString(dst []byte, s string) []byte {
	if id, ok := enc.dict[s]; ok {
		return binary.AppendUvarint(dst, id+1)
	}
	enc.dict[s] = uint64(len(enc.dict))
	dst = append(dst, 0)
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// AppendBatch appends the encoded batch to dst and returns the
// extended slice. baseSeq is the sequence number of entries[0]; the
// batch covers the contiguous range [baseSeq, baseSeq+len(entries)).
func (enc *Encoder) AppendBatch(dst []byte, baseSeq uint64, entries []audit.Entry) []byte {
	clear(enc.dict)
	dst = binary.AppendUvarint(dst, baseSeq)
	dst = binary.AppendUvarint(dst, uint64(len(entries)))
	prev := int64(0)
	for i := range entries {
		e := &entries[i]
		ns := e.Time.UnixNano()
		dst = binary.AppendVarint(dst, ns-prev)
		prev = ns
		var flags byte
		if e.Op == audit.Allow {
			flags |= flagAllow
		}
		if e.Status == audit.Regular {
			flags |= flagRegular
		}
		if e.Site != "" {
			flags |= flagHasSite
		}
		if e.Reason != "" {
			flags |= flagHasReason
		}
		dst = append(dst, flags)
		dst = enc.appendString(dst, e.User)
		dst = enc.appendString(dst, e.Data)
		dst = enc.appendString(dst, e.Purpose)
		dst = enc.appendString(dst, e.Authorized)
		if flags&flagHasSite != 0 {
			dst = enc.appendString(dst, e.Site)
		}
		if flags&flagHasReason != 0 {
			dst = enc.appendString(dst, e.Reason)
		}
	}
	return dst
}

// Decoder carries the per-batch dictionary so repeated decodes reuse
// one slice allocation. Not safe for concurrent use; each consolidator
// connection owns one.
type Decoder struct {
	dict []string
}

// NewDecoder returns a Decoder ready for DecodeBatch.
func NewDecoder() *Decoder { return &Decoder{dict: make([]string, 0, 256)} }

// readString decodes one dictionary-coded string from b[pos:],
// returning the string and the new position.
func (dec *Decoder) readString(b []byte, pos int) (string, int, error) {
	id, n := binary.Uvarint(b[pos:])
	if n <= 0 {
		return "", 0, ErrBatchCorrupt
	}
	pos += n
	if id != 0 {
		if id > uint64(len(dec.dict)) {
			return "", 0, fmt.Errorf("%w: dictionary id %d of %d", ErrBatchCorrupt, id, len(dec.dict))
		}
		return dec.dict[id-1], pos, nil
	}
	ln, n := binary.Uvarint(b[pos:])
	if n <= 0 || ln > uint64(len(b)-pos-n) {
		return "", 0, ErrBatchCorrupt
	}
	pos += n
	// One string allocation per distinct value per batch; repeats
	// share it through the dictionary.
	s := string(b[pos : pos+int(ln)])
	dec.dict = append(dec.dict, s)
	return s, pos + int(ln), nil
}

// DecodeBatch decodes a batch produced by AppendBatch. Decoded times
// are UTC (the wire carries Unix nanoseconds; monotonic clock readings
// and zone names do not travel). The payload must be consumed exactly:
// trailing bytes are an error, so a frame cannot smuggle data past the
// codec.
func (dec *Decoder) DecodeBatch(payload []byte) (baseSeq uint64, entries []audit.Entry, err error) {
	dec.dict = dec.dict[:0]
	pos := 0
	baseSeq, n := binary.Uvarint(payload)
	if n <= 0 {
		return 0, nil, ErrBatchCorrupt
	}
	pos += n
	count, n := binary.Uvarint(payload[pos:])
	if n <= 0 {
		return 0, nil, ErrBatchCorrupt
	}
	pos += n
	if count > MaxBatchEntries {
		return 0, nil, errBatchSize
	}
	// Each entry needs at least a time varint, a flag byte and four
	// string refs: 6 bytes. A count beyond that is corrupt, and the
	// check bounds the allocation below by the payload size.
	if count > uint64(len(payload)-pos)/6 {
		return 0, nil, errBatchSize
	}
	entries = make([]audit.Entry, count)
	prev := int64(0)
	for i := range entries {
		e := &entries[i]
		d, n := binary.Varint(payload[pos:])
		if n <= 0 {
			return 0, nil, ErrBatchCorrupt
		}
		pos += n
		prev += d
		e.Time = time.Unix(0, prev).UTC()
		if pos >= len(payload) {
			return 0, nil, ErrBatchCorrupt
		}
		flags := payload[pos]
		pos++
		if flags&^(flagAllow|flagRegular|flagHasSite|flagHasReason) != 0 {
			return 0, nil, fmt.Errorf("%w: flag byte %#x", ErrBatchCorrupt, flags)
		}
		if flags&flagAllow != 0 {
			e.Op = audit.Allow
		} else {
			e.Op = audit.Deny
		}
		if flags&flagRegular != 0 {
			e.Status = audit.Regular
		} else {
			e.Status = audit.Exception
		}
		if e.User, pos, err = dec.readString(payload, pos); err != nil {
			return 0, nil, err
		}
		if e.Data, pos, err = dec.readString(payload, pos); err != nil {
			return 0, nil, err
		}
		if e.Purpose, pos, err = dec.readString(payload, pos); err != nil {
			return 0, nil, err
		}
		if e.Authorized, pos, err = dec.readString(payload, pos); err != nil {
			return 0, nil, err
		}
		if flags&flagHasSite != 0 {
			if e.Site, pos, err = dec.readString(payload, pos); err != nil {
				return 0, nil, err
			}
		}
		if flags&flagHasReason != 0 {
			if e.Reason, pos, err = dec.readString(payload, pos); err != nil {
				return 0, nil, err
			}
		}
	}
	if pos != len(payload) {
		return 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrBatchCorrupt, len(payload)-pos)
	}
	return baseSeq, entries, nil
}
