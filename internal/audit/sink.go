package audit

import (
	"encoding/json"
	"errors"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// Asynchronous durable sink. The seed implementation JSON-encoded
// every entry to the sink writer inside the log's critical section,
// allocating a fresh encoder per entry; here durability is a
// background flusher fed through a bounded queue. Appenders only
// enqueue (sequence assignment and enqueue are one atomic step, so
// the durable stream is written in sequence order); one goroutine
// owns the encoder and the batch buffer, encodes outside every log
// lock, and writes batches triggered by size or interval.

// ErrSinkOverflow is reported through the error callback when the
// sink queue is full and the backpressure policy is DropOnFull.
var ErrSinkOverflow = errors.New("audit: sink queue full, entry dropped")

// SinkOptions tunes the asynchronous sink attached by SetSinkOptions.
// The zero value selects the defaults noted per field.
type SinkOptions struct {
	// BatchSize is the number of entries that force a flush of the
	// encode buffer to the writer. Default 128.
	BatchSize int
	// Interval is the maximum time an encoded entry waits buffered
	// before a flush. Default 50ms. Negative disables the timer
	// (flushes happen on BatchSize, Flush, and close only).
	Interval time.Duration
	// Queue is the bounded channel capacity between appenders and the
	// flusher. Default 4096.
	Queue int
	// DropOnFull selects the backpressure policy when the queue is
	// full: true drops the entry (reported via the error callback as
	// ErrSinkOverflow; the in-memory append still succeeds), false
	// blocks the appender until the flusher catches up. Default
	// false — audit durability is lossless unless explicitly traded.
	DropOnFull bool
}

// stampedWriter receives the flusher's batches as (seq, entry) pairs
// instead of encoded JSON lines. The durable store plugs its WAL feed
// in here, so every entry's sequence number travels with it into the
// recovery log. writeStamped is called from the single flusher
// goroutine with batches in sequence order; syncStamped is the
// durability barrier behind Flush/CloseSink.
type stampedWriter interface {
	// dropHigh is the highest sequence number assigned to an entry the
	// sink dropped under DropOnFull (0 if none): the writer persists it
	// so recovery can count gaps past the last surviving record.
	writeStamped(batch []stamped, dropHigh uint64) error
	syncStamped() error
}

// sink is the running flusher state. Appenders coalesce entries into
// the pending buffer under the mutex — sequence assignment and
// enqueue are one critical section (the flush-ordering invariant) —
// and the flusher swaps the whole buffer out per wakeup, so the
// per-entry enqueue cost is a slice append, not a channel round-trip.
type sink struct {
	mu       sync.Mutex
	closed   bool
	pending  []stamped       // enqueued entries, in sequence order
	barriers []chan struct{} // flush waiters, closed after the next drain
	full     sync.Cond       // blocking-backpressure waiters (on mu)

	wake     chan struct{} // cap 1: coalesced flusher wakeup
	done     chan struct{}
	w        io.Writer
	bw       stampedWriter // when set, batches bypass JSON encoding
	onErr    func(error)
	batch    int
	queue    int
	interval time.Duration
	drop     bool
	dropped  atomic.Uint64
	dropHigh uint64 // highest dropped seq (under mu); see stampedWriter
}

func newSink(w io.Writer, onErr func(error), opts SinkOptions) *sink {
	if opts.BatchSize <= 0 {
		opts.BatchSize = 128
	}
	if opts.Interval == 0 {
		opts.Interval = 50 * time.Millisecond
	}
	if opts.Queue <= 0 {
		opts.Queue = 4096
	}
	s := &sink{
		wake:     make(chan struct{}, 1),
		done:     make(chan struct{}),
		w:        w,
		onErr:    onErr,
		batch:    opts.BatchSize,
		queue:    opts.Queue,
		interval: opts.Interval,
		drop:     opts.DropOnFull,
	}
	s.full.L = &s.mu
	return s
}

// wakeFlusher nudges the flusher; a pending token already guarantees
// a future drain, so the send never blocks.
func (s *sink) wakeFlusher() {
	select {
	case s.wake <- struct{}{}:
	default:
	}
}

// send assigns the entry's sequence number and enqueues it for the
// flusher as one atomic step. After close it only assigns the
// sequence — the in-memory append must not be blocked by a torn-down
// sink.
func (s *sink) send(l *Log, e Entry) uint64 {
	s.mu.Lock()
	if s.drop && !s.closed && len(s.pending) >= s.queue {
		seq := l.seq.Add(1)
		s.dropHigh = seq
		s.mu.Unlock()
		s.dropped.Add(1)
		s.wakeFlusher() // the drop high-water must reach the writer too
		if s.onErr != nil {
			s.onErr(ErrSinkOverflow)
		}
		return seq
	}
	for !s.drop && !s.closed && len(s.pending) >= s.queue {
		s.full.Wait() // backpressure: block until the flusher drains
	}
	seq := l.seq.Add(1)
	if !s.closed {
		s.pending = append(s.pending, stamped{seq: seq, e: e})
	}
	s.mu.Unlock()
	s.wakeFlusher()
	return seq
}

// plainJSON reports whether every byte of v can be emitted inside a
// JSON string verbatim under encoding/json's default (HTML-escaping)
// rules: printable ASCII excluding the quote, backslash and the
// HTML-significant characters.
func plainJSON(v string) bool {
	for i := 0; i < len(v); i++ {
		c := v[i]
		if c < 0x20 || c >= 0x7f || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendJSONLine encodes the entry exactly as a stdlib json.Encoder
// would — same field order, omitempty handling, HTML escaping and
// trailing newline — but without reflection, which is the flusher's
// dominant per-entry cost. Entries carrying bytes outside the plain
// ASCII fast path fall back to encoding/json for byte-identical
// escaping.
func appendJSONLine(dst []byte, e *Entry) ([]byte, error) {
	if !plainJSON(e.User) || !plainJSON(e.Data) || !plainJSON(e.Purpose) ||
		!plainJSON(e.Authorized) || !plainJSON(e.Site) || !plainJSON(e.Reason) {
		b, err := json.Marshal(e)
		if err != nil {
			return dst, err
		}
		return append(append(dst, b...), '\n'), nil
	}
	dst = append(dst, `{"time":"`...)
	dst = e.Time.AppendFormat(dst, time.RFC3339Nano)
	dst = append(dst, `","op":`...)
	dst = strconv.AppendInt(dst, int64(e.Op), 10)
	dst = append(dst, `,"user":"`...)
	dst = append(dst, e.User...)
	dst = append(dst, `","data":"`...)
	dst = append(dst, e.Data...)
	dst = append(dst, `","purpose":"`...)
	dst = append(dst, e.Purpose...)
	dst = append(dst, `","authorized":"`...)
	dst = append(dst, e.Authorized...)
	dst = append(dst, `","status":`...)
	dst = strconv.AppendInt(dst, int64(e.Status), 10)
	if e.Site != "" {
		dst = append(dst, `,"site":"`...)
		dst = append(dst, e.Site...)
		dst = append(dst, '"')
	}
	if e.Reason != "" {
		dst = append(dst, `,"reason":"`...)
		dst = append(dst, e.Reason...)
		dst = append(dst, '"')
	}
	return append(dst, "}\n"...), nil
}

// AppendSinkJSON appends the sink's hand-rolled JSON-line encoding of
// e to dst — the exact bytes the durable JSONL sink writes per entry.
// Exported as the baseline for the wire codec benchmarks: the binary
// batch codec's per-entry cost is measured against this encoder.
func AppendSinkJSON(dst []byte, e *Entry) ([]byte, error) {
	return appendJSONLine(dst, e)
}

// run is the flusher goroutine: per wakeup it swaps the whole pending
// buffer out, encodes each entry as one JSON line into its owned
// buffer, and writes to the sink writer when the batch fills, the
// interval elapses, a flush barrier arrives, or the sink closes.
// Write errors surface through the error callback; the failed batch
// is dropped, later entries continue (the clinical workflow stays
// unimpeded, the durability fault is reported — the paper's first
// design constraint).
func (s *sink) run() {
	var tickC <-chan time.Time
	if s.interval > 0 {
		tick := time.NewTicker(s.interval)
		defer tick.Stop()
		tickC = tick.C
	}
	buf := make([]byte, 0, 4096)
	n := 0
	flush := func() {
		if s.bw != nil {
			if err := s.bw.syncStamped(); err != nil && s.onErr != nil {
				s.onErr(err)
			}
			return
		}
		if len(buf) == 0 {
			n = 0
			return
		}
		if _, err := s.w.Write(buf); err != nil && s.onErr != nil {
			s.onErr(err)
		}
		buf = buf[:0]
		n = 0
	}
	var batch []stamped
	for {
		var tick bool
		select {
		case <-s.wake:
		case <-tickC:
			tick = true
		}
		s.mu.Lock()
		batch, s.pending = s.pending, batch[:0]
		barriers := s.barriers
		s.barriers = nil
		closed := s.closed
		dropHigh := s.dropHigh
		if len(batch) > 0 && !s.drop {
			s.full.Broadcast()
		}
		s.mu.Unlock()
		if s.bw != nil {
			if len(batch) > 0 || dropHigh > 0 {
				if err := s.bw.writeStamped(batch, dropHigh); err != nil && s.onErr != nil {
					s.onErr(err)
				}
			}
		} else {
			for i := range batch {
				var err error
				if buf, err = appendJSONLine(buf, &batch[i].e); err != nil && s.onErr != nil {
					s.onErr(err)
				}
				if n++; n >= s.batch {
					flush()
				}
			}
		}
		if tick || len(barriers) > 0 || closed {
			flush()
		}
		for _, c := range barriers {
			close(c)
		}
		if closed {
			close(s.done)
			return
		}
	}
}

// flushWait registers a flush barrier and waits for the flusher to
// write everything enqueued before it.
func (s *sink) flushWait() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	done := make(chan struct{})
	s.barriers = append(s.barriers, done)
	s.mu.Unlock()
	s.wakeFlusher()
	<-done
}

// close stops intake and waits for the flusher to drain and write its
// final batch. Idempotent.
func (s *sink) close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.full.Broadcast()
	s.mu.Unlock()
	s.wakeFlusher()
	<-s.done
}

// SetSink attaches a durable writer with default SinkOptions: every
// appended entry is encoded as one JSON line by a background flusher
// and written in append order. onErr (may be nil) is invoked when a
// sink write fails or an entry is dropped under the DropOnFull
// policy; the in-memory append always succeeds. Replacing or
// clearing (w == nil) a previous sink flushes and stops it first.
// Call Flush to wait for pending writes, CloseSink to detach.
func (l *Log) SetSink(w io.Writer, onErr func(error)) {
	l.SetSinkOptions(w, onErr, SinkOptions{})
}

// SetSinkOptions is SetSink with explicit batching, queue, and
// backpressure configuration.
func (l *Log) SetSinkOptions(w io.Writer, onErr func(error), opts SinkOptions) {
	var ns *sink
	if w != nil {
		ns = newSink(w, onErr, opts)
		go ns.run()
	}
	if old := l.sink.Swap(ns); old != nil {
		old.close()
	}
}

// setBatchSink attaches a stampedWriter-backed sink (the durable
// store's WAL feed) with the same lifecycle and backpressure rules as
// SetSinkOptions.
func (l *Log) setBatchSink(bw stampedWriter, onErr func(error), opts SinkOptions) {
	ns := newSink(nil, onErr, opts)
	ns.bw = bw
	go ns.run()
	if old := l.sink.Swap(ns); old != nil {
		old.close()
	}
}

// Flush blocks until every entry appended before the call has been
// written to the sink. No-op without a sink.
func (l *Log) Flush() {
	if s := l.sink.Load(); s != nil {
		s.flushWait()
	}
}

// CloseSink flushes pending entries, stops the flusher, and detaches
// the sink. No-op without a sink.
func (l *Log) CloseSink() {
	if old := l.sink.Swap(nil); old != nil {
		old.close()
	}
}

// SinkDropped reports how many entries the current sink has dropped
// under the DropOnFull policy (0 without a sink).
func (l *Log) SinkDropped() uint64 {
	if s := l.sink.Load(); s != nil {
		return s.dropped.Load()
	}
	return 0
}
