package workflow

import (
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/vocab"
)

// DefaultHospital returns a ready-to-run simulation of a mid-size
// ward: the Figure 3 policy store as documented practice, a roster of
// fifteen staff, four informal practices (including the paper's
// Referral:Registration:Nurse habit) and two snooping violations.
// Callers may adjust rates or seed before passing it to New.
func DefaultHospital(seed int64) Config {
	v := vocab.Sample()
	ps := scenario.PolicyStore()
	return Config{
		Vocab:            v,
		Policy:           ps,
		Seed:             seed,
		DocumentedPerDay: 40,
		Staff: []Staff{
			{Name: "mark", Role: "nurse"}, {Name: "tim", Role: "nurse"},
			{Name: "bob", Role: "nurse"}, {Name: "jane", Role: "nurse"},
			{Name: "rita", Role: "nurse"}, {Name: "omar", Role: "nurse"},
			{Name: "sarah", Role: "doctor"}, {Name: "li", Role: "doctor"},
			{Name: "ahmed", Role: "doctor"},
			{Name: "freud", Role: "psychiatrist"},
			{Name: "bill", Role: "clerk"}, {Name: "jason", Role: "clerk"},
			{Name: "amy", Role: "clerk"},
			{Name: "pat", Role: "lab_tech"}, {Name: "drew", Role: "lab_tech"},
		},
		Informal: []Behavior{
			// The paper's §5 habit: nurses register patients from
			// referral letters when the front desk is swamped.
			{Data: "referral", Purpose: "registration", Role: "nurse", PerDay: 8},
			// Lab techs check prescriptions before running panels.
			{Data: "prescription", Purpose: "treatment", Role: "lab_tech", PerDay: 5},
			// Clerks consult insurance data while preparing bills.
			{Data: "insurance", Purpose: "billing", Role: "clerk", PerDay: 6},
			// Doctors pull referral letters during treatment.
			{Data: "referral", Purpose: "treatment", Role: "doctor", PerDay: 4},
		},
		Violations: []Behavior{
			// A single clerk browsing psychiatric notes after hours.
			{Data: "psychiatry", Purpose: "research", Role: "clerk", PerDay: 0.7, Users: []string{"jason"}, OffHours: true},
			// One nurse reading a neighbour's address repeatedly.
			{Data: "address", Purpose: "treatment", Role: "nurse", PerDay: 0.5, Users: []string{"omar"}, OffHours: true},
		},
	}
}

// HospitalGroundTruth returns the informal rules of DefaultHospital
// without constructing a simulator; convenient for scoring.
func HospitalGroundTruth() (informal, violations []policy.Rule) {
	cfg := DefaultHospital(0)
	for _, b := range cfg.Informal {
		informal = append(informal, b.Rule())
	}
	for _, b := range cfg.Violations {
		violations = append(violations, b.Rule())
	}
	return informal, violations
}
