package lint

import (
	"reflect"
	"testing"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// TestSymbolicMatchesMaterialized: the symbolic pass and the
// materializing oracle emit byte-identical reports on every fixture
// rule set the oracle can handle.
func TestSymbolicMatchesMaterialized(t *testing.T) {
	v := fixtureVocab(t)
	sample := vocab.Sample()
	cases := []struct {
		name  string
		v     *vocab.Vocabulary
		rules []policy.Rule
	}{
		{"clean", v, cleanRules(t)},
		{"unknown-attr", v, append(cleanRules(t), rule(t, "consent=given"))},
		{"unknown-value", v, append(cleanRules(t), rule(t, "data=xray & purpose=treatment & authorized=nurse"))},
		{"zero", v, append([]policy.Rule{{}}, cleanRules(t)...)},
		{"duplicate", v, append(cleanRules(t), rule(t, "data=clinical & purpose=treatment & authorized=nurse"))},
		{"subsumed", v, append(cleanRules(t), rule(t, "data=lab_result & purpose=treatment & authorized=nurse"))},
		{"unreachable", v, cleanRules(t)[:1]},
		{"sample-mixed", sample, []policy.Rule{
			rule(t, "data=demographic & purpose=billing & authorized=clerk"),
			rule(t, "data=clinical & purpose=treatment & authorized=doctor"),
			rule(t, "data=referral & purpose=treatment & authorized=nurse"),
			rule(t, "data=financial & authorized=manager"),
			rule(t, "data=xray & purpose=treatment & authorized=doctor"),
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sym := RulesOpts("PS", tc.rules, tc.v, Options{})
			mat := RulesOpts("PS", tc.rules, tc.v, Options{Materialize: true})
			if !reflect.DeepEqual(sym, mat) {
				t.Errorf("paths disagree:\nsymbolic:     %+v\nmaterialized: %+v", sym, mat)
			}
		})
	}
}

// TestConflictingRules: different attribute signatures overlapping on
// every shared attribute trigger PL007; disjoint projections or equal
// signatures do not.
func TestConflictingRules(t *testing.T) {
	v := vocab.Sample()
	rules := []policy.Rule{
		rule(t, "data=clinical & purpose=treatment & authorized=doctor"),
		rule(t, "data=general & authorized=medical_staff"), // overlaps rule 1 on data and authorized
	}
	rep := Rules("PS", rules, v)
	if got := rep.Counts()[ConflictingRules]; got != 1 {
		t.Fatalf("PL007 count = %d: %v", got, rep.Findings)
	}
	var f Finding
	for _, x := range rep.Findings {
		if x.Code == ConflictingRules {
			f = x
		}
	}
	if f.Rule != 2 {
		t.Errorf("PL007 should point at the later rule: %+v", f)
	}

	// Disjoint on a shared attribute: no conflict.
	disjoint := []policy.Rule{
		rule(t, "data=clinical & purpose=treatment & authorized=doctor"),
		rule(t, "data=financial & authorized=medical_staff"),
	}
	if n := Rules("PS", disjoint, v).Counts()[ConflictingRules]; n != 0 {
		t.Errorf("disjoint projections flagged: %d", n)
	}

	// No shared attribute at all: no conflict.
	unrelated := []policy.Rule{
		rule(t, "data=clinical"),
		rule(t, "purpose=treatment"),
	}
	if n := Rules("PS", unrelated, v).Counts()[ConflictingRules]; n != 0 {
		t.Errorf("attribute-disjoint rules flagged: %d", n)
	}

	// Same signature: redundancy territory (PL004/PL005), never PL007.
	same := []policy.Rule{
		rule(t, "data=clinical & purpose=treatment"),
		rule(t, "data=general & purpose=healthcare"),
	}
	if n := Rules("PS", same, v).Counts()[ConflictingRules]; n != 0 {
		t.Errorf("same-signature rules flagged: %d", n)
	}
}

// TestOverBroadRule: a term reaching more than the configured fraction
// of its attribute's ground space triggers PL008.
func TestOverBroadRule(t *testing.T) {
	v := vocab.Sample()
	rules := []policy.Rule{
		rule(t, "data=phi & purpose=treatment & authorized=nurse"), // phi = 10/10 leaves
	}
	rep := Rules("PS", rules, v)
	if got := rep.Counts()[OverBroadRule]; got != 1 {
		t.Fatalf("PL008 count = %d: %v", got, rep.Findings)
	}
	var f Finding
	for _, x := range rep.Findings {
		if x.Code == OverBroadRule {
			f = x
		}
	}
	if f.Rule != 1 || f.Attr != "data" || f.Value != "phi" {
		t.Errorf("PL008 finding: %+v", f)
	}

	// Tighter threshold pulls in clinical (5/10 > 0.4).
	rep = RulesOpts("PS", []policy.Rule{
		rule(t, "data=clinical & purpose=treatment & authorized=nurse"),
	}, v, Options{OverBroadFraction: 0.4})
	if got := rep.Counts()[OverBroadRule]; got != 1 {
		t.Errorf("PL008 at 0.4 = %d: %v", got, rep.Findings)
	}

	// Negative fraction disables the rule.
	rep = RulesOpts("PS", rules, v, Options{OverBroadFraction: -1})
	if got := rep.Counts()[OverBroadRule]; got != 0 {
		t.Errorf("PL008 disabled still fired: %d", got)
	}

	// Ground terms are never over-broad, even in a tiny hierarchy.
	rep = RulesOpts("PS", []policy.Rule{
		rule(t, "purpose=research"),
	}, v, Options{OverBroadFraction: 0.1})
	if got := rep.Counts()[OverBroadRule]; got != 0 {
		t.Errorf("single-leaf term flagged: %d", got)
	}
}

// TestLint100k: the symbolic pass completes on a 100k-leaf vocabulary
// — a workload on which a single composite rule's ground Range is far
// beyond the materializing limit.
func TestLint100k(t *testing.T) {
	if testing.Short() {
		t.Skip("100k vocabulary build in -short mode")
	}
	v := vocab.Synthetic(10, 5)
	rules := []policy.Rule{
		rule(t, "data=n1 & purpose=treatment & authorized=nurse"),   // 10k leaves
		rule(t, "data=n11 & purpose=treatment & authorized=nurse"),  // inside n1: subsumed
		rule(t, "data=n2 & purpose=healthcare & authorized=doctor"), // 10k leaves
		rule(t, "data=n0 & purpose=billing & authorized=clerk"),     // whole space: over-broad
	}
	rep := Rules("PS", rules, v)
	counts := rep.Counts()
	if counts[SubsumedRule] != 1 {
		t.Errorf("PL005 = %d: want 1", counts[SubsumedRule])
	}
	if counts[OverBroadRule] != 1 {
		t.Errorf("PL008 = %d: want 1", counts[OverBroadRule])
	}
	// n3..n10 (depth-1 subtrees with 10k leaves each) are unreachable.
	if counts[UnreachableSubtree] == 0 {
		t.Errorf("PL006 = 0 on a mostly-dead vocabulary")
	}
}
