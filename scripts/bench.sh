#!/usr/bin/env sh
# bench.sh — run the experiment benchmarks (bench_test.go) and record
# the results as a JSON map {benchmark name -> {ns_per_op, allocs_per_op,
# bytes_per_op}} so successive PRs can diff performance numbers.
#
# Usage: scripts/bench.sh [output.json]
# Default output: BENCH.json in the repo root. Committed snapshots are
# named BENCH_<pr>.json.
#
# The -bench=. sweep includes the enforcement fast-path rows
# (E12_EnforcedQPS, E13_ConcurrentEnforcement) and the symbolic
# policy-analysis row (E14_SymbolicAnalysis — coverage and lint on a
# 100k-ground-value vocabulary, plus the symbolic-vs-materialized
# differential floor); check.sh smokes the same set at one iteration
# so the harness cannot rot.
set -eu

cd "$(dirname "$0")/.."

out="${1:-BENCH.json}"
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

echo "==> go test -bench=. -benchmem (this takes a few minutes)"
go test -bench=. -benchmem -benchtime=1s -count=1 -run=NONE . | tee "$tmp"

awk '
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)   # strip the -GOMAXPROCS suffix
    ns = ""; bytes = ""; allocs = ""
    for (i = 2; i <= NF; i++) {
        if ($i == "ns/op")     ns = $(i-1)
        if ($i == "B/op")      bytes = $(i-1)
        if ($i == "allocs/op") allocs = $(i-1)
    }
    if (ns != "") {
        rows[++n] = sprintf("  \"%s\": {\"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}",
                            name, ns, bytes == "" ? "null" : bytes, allocs == "" ? "null" : allocs)
    }
}
END {
    print "{"
    for (i = 1; i <= n; i++) printf "%s%s\n", rows[i], (i < n ? "," : "")
    print "}"
}
' "$tmp" > "$out"

echo "==> wrote $out"
