package workflow

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/vocab"
)

// LargeHospital generates a multi-department configuration for scale
// experiments: departments copies of the default ward's roster and
// behaviour mix, with per-department staff names and proportionally
// scaled rates. Ground-truth bookkeeping works exactly as in
// DefaultHospital, so extraction quality remains measurable at scale.
func LargeHospital(seed int64, departments int) Config {
	if departments < 1 {
		departments = 1
	}
	v := vocab.Sample()
	ps := scenario.PolicyStore()
	cfg := Config{
		Vocab:            v,
		Policy:           ps,
		Seed:             seed,
		DocumentedPerDay: 40 * float64(departments),
	}
	// Ordered roster: the staff list feeds the seeded simulator, so
	// its order must be deterministic run to run.
	roleCounts := []struct {
		role string
		n    int
	}{
		{"nurse", 6}, {"doctor", 3}, {"psychiatrist", 1}, {"clerk", 3}, {"lab_tech", 2},
	}
	for d := 0; d < departments; d++ {
		for _, rc := range roleCounts {
			for i := 0; i < rc.n; i++ {
				cfg.Staff = append(cfg.Staff, Staff{
					Name: fmt.Sprintf("%s-%d-%d", rc.role, d, i),
					Role: rc.role,
				})
			}
		}
	}
	// The same informal practices as the default ward, at aggregate
	// rates; user pools span all departments (role-wide), which is
	// realistic for organization-level habits.
	for _, b := range []Behavior{
		{Data: "referral", Purpose: "registration", Role: "nurse", PerDay: 8},
		{Data: "prescription", Purpose: "treatment", Role: "lab_tech", PerDay: 5},
		{Data: "insurance", Purpose: "billing", Role: "clerk", PerDay: 6},
		{Data: "referral", Purpose: "treatment", Role: "doctor", PerDay: 4},
	} {
		b.PerDay *= float64(departments)
		cfg.Informal = append(cfg.Informal, b)
	}
	// One single-user violation per department.
	for d := 0; d < departments; d++ {
		cfg.Violations = append(cfg.Violations, Behavior{
			Data: "psychiatry", Purpose: "research", Role: "clerk", PerDay: 0.7,
			Users: []string{fmt.Sprintf("clerk-%d-0", d)}, OffHours: true,
		})
	}
	return cfg
}

// InformalRules lists a config's informal ground-truth rules.
func (c Config) InformalRules() []policy.Rule {
	out := make([]policy.Rule, len(c.Informal))
	for i, b := range c.Informal {
		out[i] = b.Rule()
	}
	return out
}
