package prima

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"repro/internal/scenario"
)

var clock0 = time.Date(2007, 3, 1, 8, 0, 0, 0, time.UTC)

// hospital builds a fully wired System with the Figure 3 policy and a
// small records table.
func hospital(t *testing.T) *System {
	t.Helper()
	sys := New(Config{Policy: scenario.PolicyStore()})
	step := 0
	sys.SetClock(func() time.Time { step++; return clock0.Add(time.Duration(step) * time.Second) })
	sys.DB().MustExec(`CREATE TABLE records (
		patient TEXT, address TEXT, prescription TEXT, referral TEXT, psychiatry TEXT, insurance TEXT
	)`)
	sys.DB().MustExec(`INSERT INTO records VALUES
		('p1', '1 Elm St',  'aspirin', 'cardio', 'none',    'acme-health'),
		('p2', '2 Oak Ave', 'statins', 'derm',   'anxiety', 'medicare'),
		('p3', '3 Pine Rd', 'insulin', 'endo',   'none',    'acme-health')`)
	if err := sys.RegisterTable(TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{
			"address": "address", "prescription": "prescription",
			"referral": "referral", "psychiatry": "psychiatry", "insurance": "insurance",
		},
	}); err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestSystemDefaults(t *testing.T) {
	sys := New(Config{})
	if sys.Vocabulary() == nil || sys.PolicyStore() == nil || sys.AuditLog() == nil {
		t.Fatal("defaults missing")
	}
	if sys.PolicyStore().Len() != 0 {
		t.Error("default policy should be empty")
	}
	if len(sys.Rules()) != 0 {
		t.Error("Rules() on empty store")
	}
}

func TestSystemFullLoop(t *testing.T) {
	// The complete PRIMA story on the facade: enforce → deny →
	// break glass (repeatedly, multiple users) → coverage drops →
	// refine → adopt → enforce now allows → coverage recovers.
	sys := hospital(t)

	// Regular allowed access.
	res, _, err := sys.Query("tim", "nurse", "treatment", `SELECT referral FROM records`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("allowed query: %v %v", res, err)
	}

	// Registration via referral is not in policy: denied, then five
	// break-glass accesses by three nurses.
	if _, _, err := sys.Query("mark", "nurse", "registration", `SELECT referral FROM records`); !errors.Is(err, ErrDenied) {
		t.Fatalf("want ErrDenied, got %v", err)
	}
	for _, u := range []string{"mark", "tim", "bob", "mark", "tim"} {
		if _, _, err := sys.BreakGlass(u, "nurse", "registration", "front desk backlog",
			`SELECT referral FROM records`); err != nil {
			t.Fatal(err)
		}
	}

	rep, err := sys.EntryCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Coverage >= 1 {
		t.Fatalf("coverage should have dropped: %+v", rep)
	}

	patterns, err := sys.Patterns()
	if err != nil {
		t.Fatal(err)
	}
	if len(patterns) != 1 || patterns[0].Rule.Key() != scenario.RefinementPattern().Key() {
		t.Fatalf("patterns = %v", patterns)
	}

	round, err := sys.RunRefinement(AdoptAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(round.Adopted) != 1 || round.CoverageAfter <= round.CoverageBefore {
		t.Fatalf("round = %+v", round)
	}
	if len(sys.RefinementHistory()) != 1 {
		t.Error("history not recorded")
	}

	// The adopted rule takes effect.
	res, _, err = sys.Query("mark", "nurse", "registration", `SELECT referral FROM records`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("post-adoption query: %v %v", res, err)
	}
}

func TestSystemCoverageAlgorithm1(t *testing.T) {
	sys := hospital(t)
	// Reproduce a Figure 3-like state through the middleware, then
	// check set-semantics coverage.
	if _, _, err := sys.Query("john", "nurse", "treatment", `SELECT prescription FROM records`); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.BreakGlass("mark", "nurse", "registration", "backlog", `SELECT referral FROM records`); err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Coverage()
	if err != nil {
		t.Fatal(err)
	}
	if rep.RangeY != 2 || rep.Overlap != 1 || math.Abs(rep.Coverage-0.5) > 1e-12 {
		t.Errorf("coverage report = %+v", rep)
	}
	if len(rep.Gaps) != 1 || len(rep.Gaps[0].NearMisses) == 0 {
		t.Errorf("gap explanations missing: %+v", rep.Gaps)
	}
}

func TestSystemConsent(t *testing.T) {
	sys := hospital(t)
	if err := sys.SetConsent("p2", "clinical", "", OptOut, clock0); err != nil {
		t.Fatal(err)
	}
	res, acc, err := sys.Query("tim", "nurse", "treatment", `SELECT patient, referral FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 || acc.OptedOut != 1 {
		t.Errorf("consent filter: rows=%d optedOut=%d", len(res.Rows), acc.OptedOut)
	}
	if n := sys.RevokeConsent("p2"); n != 1 {
		t.Errorf("revoked %d", n)
	}
	res, _, err = sys.Query("tim", "nurse", "treatment", `SELECT patient, referral FROM records`)
	if err != nil || len(res.Rows) != 3 {
		t.Errorf("post-revoke rows = %d, %v", len(res.Rows), err)
	}
}

func TestSystemRuleManagement(t *testing.T) {
	sys := hospital(t)
	n := len(sys.Rules())
	r, err := sys.AddRule("data=insurance & purpose=billing & authorized=clerk")
	if err != nil {
		t.Fatal(err)
	}
	if len(sys.Rules()) != n+1 {
		t.Error("rule not added")
	}
	res, _, err := sys.Query("bill", "clerk", "billing", `SELECT insurance FROM records`)
	if err != nil || len(res.Rows) != 3 {
		t.Fatalf("new rule not effective: %v", err)
	}
	ok, err := sys.RemoveRule(r.Compact())
	if err != nil || !ok {
		t.Fatalf("remove: %v %v", ok, err)
	}
	if _, _, err := sys.Query("bill", "clerk", "billing", `SELECT insurance FROM records`); !errors.Is(err, ErrDenied) {
		t.Errorf("removed rule still effective: %v", err)
	}
}

func TestFacadeHelpers(t *testing.T) {
	v := SampleVocabulary()
	if v.Size() == 0 {
		t.Fatal("sample vocabulary empty")
	}
	r, err := ParseRule("data=referral & purpose=treatment & authorized=nurse")
	if err != nil || r.Len() != 3 {
		t.Fatalf("ParseRule: %v %v", r, err)
	}
	p, err := ParsePolicy("PS", strings.NewReader(r.Compact()+"\n"))
	if err != nil || p.Len() != 1 {
		t.Fatalf("ParsePolicy: %v %v", p, err)
	}
	c, err := ComputeCoverage(p, p, v)
	if err != nil || c != 1 {
		t.Errorf("ComputeCoverage: %v %v", c, err)
	}
	rep, err := CoverageDetail(scenario.PolicyStore(), scenario.Figure3AuditPolicy(), v)
	if err != nil || math.Abs(rep.Coverage-0.5) > 1e-12 {
		t.Errorf("CoverageDetail: %v %v", rep, err)
	}
	erep, err := EntryCoverage(scenario.PolicyStore(), scenario.Table1(), v)
	if err != nil || math.Abs(erep.Coverage-0.3) > 1e-12 {
		t.Errorf("EntryCoverage: %v %v", erep, err)
	}
	pats, err := Refine(scenario.PolicyStore(), scenario.Table1(), v, RefineOptions{})
	if err != nil || len(pats) != 1 {
		t.Errorf("Refine: %v %v", pats, err)
	}
	pats, err = Refine(scenario.PolicyStore(), scenario.Table1(), v, RefineOptions{Extractor: MiningExtractor(false)})
	if err != nil || len(pats) != 1 {
		t.Errorf("Refine via mining: %v %v", pats, err)
	}
	al := EntriesToPolicy("AL", scenario.Table1())
	if al.Len() != 6 {
		t.Errorf("EntriesToPolicy: %d", al.Len())
	}
	var buf strings.Builder
	if err := WriteAuditCSV(&buf, scenario.Table1()); err != nil {
		t.Fatal(err)
	}
	back, err := ReadAuditCSV(strings.NewReader(buf.String()))
	if err != nil || len(back) != 10 {
		t.Errorf("audit CSV round trip: %d %v", len(back), err)
	}
	buf.Reset()
	if err := WriteAuditJSONL(&buf, scenario.Table1()); err != nil {
		t.Fatal(err)
	}
	back, err = ReadAuditJSONL(strings.NewReader(buf.String()))
	if err != nil || len(back) != 10 {
		t.Errorf("audit JSONL round trip: %d %v", len(back), err)
	}
	sim, err := NewSimulator(DefaultHospital(1))
	if err != nil {
		t.Fatal(err)
	}
	entries, err := sim.Run(0, 2)
	if err != nil || len(entries) == 0 {
		t.Errorf("simulator: %d %v", len(entries), err)
	}
	sc := EvaluateExtraction(nil, nil, nil)
	if sc.Precision != 0 {
		t.Errorf("score: %+v", sc)
	}
}

// ExampleComputeCoverage_figure3 reproduces the paper's §3.3 example.
func ExampleComputeCoverage_figure3() {
	v := SampleVocabulary()
	ps, _ := ParsePolicy("PS", strings.NewReader(`
data=general & purpose=treatment & authorized=nurse
data=psychiatry & purpose=treatment & authorized=psychiatrist
data=demographic & purpose=billing & authorized=clerk
`))
	al, _ := ParsePolicy("AL", strings.NewReader(`
data=prescription & purpose=treatment & authorized=nurse
data=referral & purpose=treatment & authorized=nurse
data=referral & purpose=registration & authorized=nurse
data=psychiatry & purpose=treatment & authorized=nurse
data=address & purpose=billing & authorized=clerk
data=prescription & purpose=billing & authorized=clerk
`))
	c, _ := ComputeCoverage(ps, al, v)
	fmt.Printf("coverage: %.0f%%\n", c*100)
	// Output: coverage: 50%
}

// ExampleRefine_table1 reproduces the §5 use-case walk-through.
func ExampleRefine_table1() {
	v := SampleVocabulary()
	ps, _ := ParsePolicy("PS", strings.NewReader(`
data=general & purpose=treatment & authorized=nurse
data=psychiatry & purpose=treatment & authorized=psychiatrist
data=demographic & purpose=billing & authorized=clerk
`))
	entries := scenario.Table1()

	before, _ := EntryCoverage(ps, entries, v)
	patterns, _ := Refine(ps, entries, v, RefineOptions{})
	for _, p := range patterns {
		ps.Add(p.Rule)
	}
	after, _ := EntryCoverage(ps, entries, v)

	fmt.Printf("coverage before: %.0f%%\n", before.Coverage*100)
	fmt.Printf("pattern: %s\n", patterns[0].Rule.Compact())
	fmt.Printf("coverage after: %.0f%%\n", after.Coverage*100)
	// Output:
	// coverage before: 30%
	// pattern: authorized=Nurse & data=Referral & purpose=Registration
	// coverage after: 80%
}

func TestSystemGeneralize(t *testing.T) {
	sys := New(Config{})
	for _, d := range []string{"address", "gender", "phone", "birthdate"} {
		if _, err := sys.AddRule("data=" + d + " & purpose=billing & authorized=clerk"); err != nil {
			t.Fatal(err)
		}
	}
	res, err := sys.Generalize()
	if err != nil {
		t.Fatal(err)
	}
	if res.RulesAfter != 1 || len(sys.Rules()) != 1 {
		t.Fatalf("generalize: %+v, live rules %v", res, sys.Rules())
	}
	if !strings.Contains(sys.Rules()[0], "demographic") {
		t.Errorf("live rule = %q", sys.Rules()[0])
	}
	// The generalized rule is enforced: gender access is now allowed
	// even though only leaf rules were entered.
	sys.DB().MustExec(`CREATE TABLE records (patient TEXT, gender TEXT)`)
	sys.DB().MustExec(`INSERT INTO records VALUES ('p1', 'f')`)
	if err := sys.RegisterTable(TableMapping{
		Table: "records", PatientCol: "patient",
		Categories: map[string]string{"gender": "gender"},
	}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := sys.Query("bill", "clerk", "billing", `SELECT gender FROM records`); err != nil {
		t.Errorf("generalized rule not enforced: %v", err)
	}
}

func TestSystemPatternEvidenceAndReport(t *testing.T) {
	sys := hospital(t)
	for _, u := range []string{"mark", "tim", "bob", "mark", "tim"} {
		if _, _, err := sys.BreakGlass(u, "nurse", "registration", "backlog",
			`SELECT referral FROM records`); err != nil {
			t.Fatal(err)
		}
	}
	evs, err := sys.PatternEvidence()
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || evs[0].Support != 5 || len(evs[0].UserCounts) != 3 {
		t.Fatalf("evidence = %+v", evs)
	}
	if s := evs[0].Suspicion(); s <= 0 || s >= 1 {
		t.Errorf("suspicion = %v", s)
	}
	var sb strings.Builder
	if err := sys.WriteReport(&sb, "Facade report"); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"# Facade report", "Policy coverage", "Audit statistics"} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("report missing %q", want)
		}
	}
	if sys.Enforcer() == nil {
		t.Error("Enforcer accessor nil")
	}
}

func TestFacadeConstructorsAndEvidenceHelpers(t *testing.T) {
	if NewVocabulary().Size() != 0 {
		t.Error("NewVocabulary not empty")
	}
	v, err := ParseVocabulary(strings.NewReader("data\n  x\n"))
	if err != nil || !v.Hierarchy("data").Contains("x") {
		t.Errorf("ParseVocabulary: %v", err)
	}
	if NewPolicy("P").Len() != 0 {
		t.Error("NewPolicy not empty")
	}
	r := MustRule(T("data", "referral"), T("purpose", "registration"), T("authorized", "nurse"))
	entries := scenario.Table1()
	practice := entries[2:3] // t3 only
	ev := GatherEvidence(practice, r)
	if ev.Support != 1 {
		t.Errorf("evidence = %+v", ev)
	}
	reviewer := SuspicionReviewer(practice, 0.1, 2)
	if d := reviewer.Review(Pattern{Rule: r}); d != Investigate {
		t.Errorf("single-user pattern decision = %v", d)
	}
	res, err := Generalize(scenario.PolicyStore(), SampleVocabulary())
	if err != nil || res.RulesAfter == 0 {
		t.Errorf("Generalize: %v %v", res, err)
	}
	l := NewLog("s")
	if l.Site() != "s" {
		t.Error("NewLog site")
	}
	if NewFederation(l).Sources() != 1 {
		t.Error("NewFederation sources")
	}
}
