package policy

import (
	"sort"
	"strings"

	"repro/internal/vocab"
)

// This file implements the symbolic range algebra: the exact
// cardinality arithmetic of Definitions 4/6/8 computed over the
// vocabulary's Euler-tour interval numbering (vocab.Intervals)
// instead of over materialized ground rules. Algorithm 1 and the
// static-analysis layer only ever consume cardinalities of ranges and
// range intersections; representing a rule as a product of
// per-attribute interval unions makes those cardinalities products of
// interval widths, a policy a union of such boxes, and the union
// cardinality an inclusion–exclusion over per-attribute overlaps —
// evaluated by coordinate-compressed sweep so it stays polynomial in
// the number of rules and independent of vocabulary size.
//
// Values a hierarchy does not know ("foreign" values) ground to
// themselves under Definition 3; they are carried as normalized
// singleton strings next to the interval union, so symbolic results
// stay byte-identical to the materializing oracle even on policies
// that reference vocabulary the store has not adopted yet.

// AttrSet is the symbolic ground set of one attribute: a sorted,
// disjoint union of leaf intervals in the hierarchy's numbering plus
// a sorted set of normalized foreign values. The zero AttrSet is the
// empty set.
type AttrSet struct {
	Spans   []vocab.Span
	Foreign []string
}

// Card returns the ground-set cardinality of the attribute set.
func (s AttrSet) Card() int64 {
	n := int64(len(s.Foreign))
	for _, sp := range s.Spans {
		n += int64(sp.Len())
	}
	return n
}

// IsEmpty reports whether the set holds no ground values.
func (s AttrSet) IsEmpty() bool { return len(s.Spans) == 0 && len(s.Foreign) == 0 }

// Intersect returns the set intersection.
func (s AttrSet) Intersect(o AttrSet) AttrSet {
	var out AttrSet
	for _, a := range s.Spans {
		for _, b := range o.Spans {
			lo, hi := max32(a.Lo, b.Lo), min32(a.Hi, b.Hi)
			if lo < hi {
				out.Spans = append(out.Spans, vocab.Span{Lo: lo, Hi: hi})
			}
		}
	}
	out.Foreign = intersectSorted(s.Foreign, o.Foreign)
	return out
}

// IntersectCard returns #(s ∩ o) without building the intersection.
func (s AttrSet) IntersectCard(o AttrSet) int64 {
	var n int64
	for _, a := range s.Spans {
		for _, b := range o.Spans {
			if lo, hi := max32(a.Lo, b.Lo), min32(a.Hi, b.Hi); lo < hi {
				n += int64(hi - lo)
			}
		}
	}
	return n + int64(len(intersectSorted(s.Foreign, o.Foreign)))
}

// Contains reports s ⊇ o.
func (s AttrSet) Contains(o AttrSet) bool {
	return s.IntersectCard(o) == o.Card()
}

// union merges o into s, returning the canonical (sorted, disjoint)
// union. Used by the lint reachability analysis to accumulate the
// leaves any rule can reach.
func (s AttrSet) union(o AttrSet) AttrSet {
	spans := append(append([]vocab.Span(nil), s.Spans...), o.Spans...)
	return AttrSet{Spans: vocab.MergeSpans(spans), Foreign: unionSorted(s.Foreign, o.Foreign)}
}

func intersectSorted(a, b []string) []string {
	var out []string
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			out = append(out, a[i])
			i++
			j++
		case a[i] < b[j]:
			i++
		default:
			j++
		}
	}
	return out
}

func unionSorted(a, b []string) []string {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := make([]string, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) || j < len(b) {
		switch {
		case j >= len(b) || (i < len(a) && a[i] < b[j]):
			out = append(out, a[i])
			i++
		case i >= len(a) || b[j] < a[i]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// SymRule is the symbolic range of one rule (Definition 8 for a
// singleton policy): the product of its terms' attribute sets, with
// attributes in the rule's normalized sort order. The zero SymRule
// is the empty range.
type SymRule struct {
	attrs []string // normalized, sorted (NewRule order)
	sets  []AttrSet
	sig   string // attrs joined with "&": the ground-key signature
	card  int64  // product of the per-attribute cardinalities
}

// Attrs returns the normalized attribute names, sorted.
func (r SymRule) Attrs() []string { return r.attrs }

// Sig returns the attribute signature. Two ground rules can only be
// equal (Definition 6) when their rules share a signature, so all
// cross-rule set algebra is grouped by it.
func (r SymRule) Sig() string { return r.sig }

// Set returns the attribute set for the i-th attribute.
func (r SymRule) Set(i int) AttrSet { return r.sets[i] }

// Card is #Range of the rule: the product of its per-attribute
// ground-set cardinalities (Corollary 1, counted not enumerated).
func (r SymRule) Card() int64 { return r.card }

// IsZero reports whether the rule's range is empty.
func (r SymRule) IsZero() bool { return r.card == 0 }

// IntersectCard returns #(Range_r ∩ Range_o): zero across different
// signatures, otherwise the product of per-attribute intersection
// cardinalities.
func (r SymRule) IntersectCard(o SymRule) int64 {
	if r.sig != o.sig {
		return 0
	}
	n := int64(1)
	for i := range r.sets {
		n *= r.sets[i].IntersectCard(o.sets[i])
		if n == 0 {
			return 0
		}
	}
	return n
}

// Subsumes reports Range_o ⊆ Range_r (Definition 8 containment).
func (r SymRule) Subsumes(o SymRule) bool {
	if o.card == 0 {
		return true
	}
	return r.IntersectCard(o) == o.card
}

// Disjoint reports Range_r ∩ Range_o = ∅.
func (r SymRule) Disjoint(o SymRule) bool { return r.IntersectCard(o) == 0 }

// CompileRule compiles r into its symbolic range under v. The second
// result is false for the zero rule, whose range is empty (PL003).
func CompileRule(r Rule, v *vocab.Vocabulary) (SymRule, bool) {
	if r.IsZero() {
		return SymRule{}, false
	}
	terms := r.Terms()
	sr := SymRule{
		attrs: make([]string, len(terms)),
		sets:  make([]AttrSet, len(terms)),
		card:  1,
	}
	var sig strings.Builder
	for i, t := range terms {
		na := vocab.Norm(t.Attr)
		sr.attrs[i] = na
		if i > 0 {
			sig.WriteByte('&')
		}
		sig.WriteString(na)
		sr.sets[i] = compileValue(v.Hierarchy(t.Attr), t.Value)
		sr.card *= sr.sets[i].Card()
	}
	sr.sig = sig.String()
	return sr, true
}

// compileValue maps one (hierarchy, value) pair to its symbolic
// ground set: the value's subtree interval when the hierarchy knows
// it, otherwise the foreign singleton (Definition 3 for atomic
// values outside the vocabulary).
func compileValue(h *vocab.Hierarchy, value string) AttrSet {
	if h != nil {
		if sp, ok := h.Intervals().Interval(value); ok {
			return AttrSet{Spans: []vocab.Span{sp}}
		}
	}
	return AttrSet{Foreign: []string{vocab.Norm(value)}}
}

// symGroup is the set of boxes sharing one attribute signature.
type symGroup struct {
	attrs []string
	boxes []SymRule
	card  int64 // #(∪ boxes), computed once at construction
}

// SymRange is the symbolic Range of a policy (Definition 8): a union
// of boxes grouped by attribute signature. Ground rules from
// different signatures are never equal, so the total cardinality is
// the sum of per-group union cardinalities. A SymRange is immutable
// after construction and safe for concurrent readers (SymCache
// publishes them lock-free).
type SymRange struct {
	groups map[string]*symGroup
	card   int64
}

// NewSymRange compiles the policy's rules under v. Unlike NewRange it
// cannot fail: no ground rule is ever materialized, so there is no
// expansion limit to exceed.
func NewSymRange(p *Policy, v *vocab.Vocabulary) *SymRange {
	return CompileRules(p.Rules(), v)
}

// CompileRules compiles a bare rule list into a symbolic range.
// Zero rules contribute nothing (their range is empty).
func CompileRules(rules []Rule, v *vocab.Vocabulary) *SymRange {
	rg := &SymRange{groups: make(map[string]*symGroup)}
	seen := make(map[string]bool, len(rules))
	for _, r := range rules {
		sr, ok := CompileRule(r, v)
		if !ok || sr.card == 0 {
			continue
		}
		// Distinct rules can compile to the same box (a chain node and
		// its only child span the same leaves); the union is unchanged,
		// so drop exact duplicates before the sweep.
		key := sr.boxKey()
		if seen[key] {
			continue
		}
		seen[key] = true
		g := rg.groups[sr.sig]
		if g == nil {
			g = &symGroup{attrs: sr.attrs}
			rg.groups[sr.sig] = g
		}
		g.boxes = append(g.boxes, sr)
	}
	for _, g := range rg.groups {
		g.card = unionCard(g.boxes)
		rg.card += g.card
	}
	return rg
}

// boxKey is a canonical identity for a compiled box, used only for
// intra-range deduplication.
func (r SymRule) boxKey() string {
	var sb strings.Builder
	sb.WriteString(r.sig)
	for _, s := range r.sets {
		for _, sp := range s.Spans {
			sb.WriteByte('|')
			writeInt32(&sb, sp.Lo)
			sb.WriteByte(':')
			writeInt32(&sb, sp.Hi)
		}
		for _, f := range s.Foreign {
			sb.WriteByte('~')
			sb.WriteString(f)
		}
		sb.WriteByte(';')
	}
	return sb.String()
}

func writeInt32(sb *strings.Builder, v int32) {
	// Fixed-width little-endian bytes: compact and unambiguous.
	sb.WriteByte(byte(v))
	sb.WriteByte(byte(v >> 8))
	sb.WriteByte(byte(v >> 16))
	sb.WriteByte(byte(v >> 24))
}

// Card is #Range_P: the exact number of distinct ground rules the
// policy derives, equal to NewRange(...).Len() whenever the latter is
// computable.
func (rg *SymRange) Card() int64 { return rg.card }

// IntersectCard returns #(Range_rg ∩ Range_o) — the quantity
// Algorithm 1 consumes — as the union cardinality of the pairwise box
// intersections within each shared signature.
func (rg *SymRange) IntersectCard(o *SymRange) int64 {
	sigs := make([]string, 0, len(rg.groups))
	for sig := range rg.groups {
		sigs = append(sigs, sig)
	}
	sort.Strings(sigs)
	var total int64
	for _, sig := range sigs {
		g := rg.groups[sig]
		og, ok := o.groups[sig]
		if !ok {
			continue
		}
		var inter []SymRule
		for _, a := range g.boxes {
			for _, b := range og.boxes {
				x := a.intersect(b)
				if x.card != 0 {
					inter = append(inter, x)
				}
			}
		}
		total += unionCard(inter)
	}
	return total
}

// intersect builds the intersection box of two same-signature boxes.
func (r SymRule) intersect(o SymRule) SymRule {
	out := SymRule{attrs: r.attrs, sig: r.sig, sets: make([]AttrSet, len(r.sets)), card: 1}
	for i := range r.sets {
		out.sets[i] = r.sets[i].Intersect(o.sets[i])
		out.card *= out.sets[i].Card()
		if out.card == 0 {
			return SymRule{attrs: r.attrs, sig: r.sig}
		}
	}
	return out
}

// Subsumes reports Range_o ⊆ Range_rg (Definition 10's complete
// coverage, decided by cardinality).
func (rg *SymRange) Subsumes(o *SymRange) bool {
	return rg.IntersectCard(o) == o.card
}

// Disjoint reports that the ranges share no ground rule.
func (rg *SymRange) Disjoint(o *SymRange) bool { return rg.IntersectCard(o) == 0 }

// Covers reports Range_r ⊆ Range_rg for a single rule — the Prune
// (Algorithm 6) test "is this pattern already derivable from the
// store" without enumerating the pattern's groundings.
func (rg *SymRange) Covers(r SymRule) bool {
	if r.card == 0 {
		return true
	}
	g, ok := rg.groups[r.sig]
	if !ok {
		return false
	}
	var inter []SymRule
	for _, b := range g.boxes {
		if b.Subsumes(r) {
			return true // single-box fast path
		}
		x := b.intersect(r)
		if x.card != 0 {
			inter = append(inter, x)
		}
	}
	return unionCard(inter) == r.card
}

// tripleSig is the signature of the audit projection {authorized,
// data, purpose} — TripleKey's attribute order.
const tripleSig = "authorized&data&purpose"

// ContainsTriple reports whether the ground rule {(data, d) ∧
// (purpose, p) ∧ (authorized, a)} — the policy projection of one
// audit row — lies in the range. It mirrors Range.ContainsKey on the
// materialized path: the row's values must be ground (a composite
// value never equals a ground rule), and membership is an interval
// probe per attribute.
func (rg *SymRange) ContainsTriple(v *vocab.Vocabulary, data, purpose, authorized string) bool {
	g, ok := rg.groups[tripleSig]
	if !ok {
		return false
	}
	pts := [3]symPoint{
		compilePoint(v.Hierarchy("authorized"), authorized),
		compilePoint(v.Hierarchy("data"), data),
		compilePoint(v.Hierarchy("purpose"), purpose),
	}
	for i := range pts {
		if !pts[i].ground {
			return false
		}
	}
	for _, b := range g.boxes {
		if b.containsPoints(&pts) {
			return true
		}
	}
	return false
}

// symPoint is one ground coordinate: a leaf position, or a foreign
// value when the hierarchy does not know it.
type symPoint struct {
	leaf    int32
	foreign string
	ground  bool
}

func compilePoint(h *vocab.Hierarchy, value string) symPoint {
	if h != nil {
		if sp, ok := h.Intervals().Interval(value); ok {
			// A composite value is not a ground rule coordinate; the
			// materialized range holds only leaves, so membership fails.
			if sp.Len() != 1 {
				return symPoint{}
			}
			return symPoint{leaf: sp.Lo, ground: true}
		}
	}
	return symPoint{foreign: vocab.Norm(value), ground: true}
}

func (r SymRule) containsPoints(pts *[3]symPoint) bool {
	for i := range r.sets {
		if !r.sets[i].containsPoint(pts[i]) {
			return false
		}
	}
	return true
}

func (s AttrSet) containsPoint(p symPoint) bool {
	if p.foreign != "" {
		i := sort.SearchStrings(s.Foreign, p.foreign)
		return i < len(s.Foreign) && s.Foreign[i] == p.foreign
	}
	// Spans are sorted and disjoint: binary search the candidate.
	i := sort.Search(len(s.Spans), func(i int) bool { return s.Spans[i].Hi > p.leaf })
	return i < len(s.Spans) && s.Spans[i].Lo <= p.leaf
}

// ---- union cardinality ----

// unionCard computes #(b1 ∪ ... ∪ bn) exactly for boxes over one
// attribute signature. Foreign values are first renumbered into unit
// coordinates past the hierarchy's leaf space (deterministically, in
// sorted order), reducing every set to a pure interval union; the
// union cardinality is then evaluated by coordinate-compressed sweep
// over the first attribute with memoized recursion over the rest —
// the inclusion–exclusion over per-attribute overlaps of Definitions
// 4/6/8, organized so shared sub-problems are counted once instead of
// 2^n times.
func unionCard(boxes []SymRule) int64 {
	switch len(boxes) {
	case 0:
		return 0
	case 1:
		return boxes[0].card
	}
	ndim := len(boxes[0].attrs)
	ctx := sweepCtx{
		dims: make([][][]vocab.Span, len(boxes)),
		ndim: ndim,
		memo: make(map[string]int64),
	}
	for d := 0; d < ndim; d++ {
		// Renumber this dimension's foreign values (shared across the
		// boxes) to synthetic leaf ids so the sweep sees only spans.
		var foreign []string
		for _, b := range boxes {
			foreign = unionSorted(foreign, b.sets[d].Foreign)
		}
		base := int32(0)
		for _, b := range boxes {
			for _, sp := range b.sets[d].Spans {
				if sp.Hi > base {
					base = sp.Hi
				}
			}
		}
		for i, b := range boxes {
			if ctx.dims[i] == nil {
				ctx.dims[i] = make([][]vocab.Span, ndim)
			}
			spans := append([]vocab.Span(nil), b.sets[d].Spans...)
			for _, f := range b.sets[d].Foreign {
				id := base + int32(sort.SearchStrings(foreign, f))
				spans = append(spans, vocab.Span{Lo: id, Hi: id + 1})
			}
			ctx.dims[i][d] = vocab.MergeSpans(spans)
		}
	}
	active := make([]int32, len(boxes))
	for i := range active {
		active[i] = int32(i)
	}
	return ctx.card(active, 0)
}

type sweepCtx struct {
	dims [][][]vocab.Span // [box][dim] -> sorted disjoint spans
	ndim int
	memo map[string]int64 // (dim, active set) -> union card over dims ≥ dim
}

func (c *sweepCtx) card(active []int32, dim int) int64 {
	if len(active) == 1 {
		n := int64(1)
		for d := dim; d < c.ndim; d++ {
			n *= spanCard(c.dims[active[0]][d])
		}
		return n
	}
	if dim == c.ndim-1 {
		all := make([]vocab.Span, 0, len(active))
		for _, b := range active {
			all = append(all, c.dims[b][dim]...)
		}
		return spanCard(vocab.MergeSpans(all))
	}
	key := c.memoKey(active, dim)
	if n, ok := c.memo[key]; ok {
		return n
	}
	// Coordinate compression: every span endpoint of the active boxes
	// in this dimension; within each elementary interval the active
	// subset is constant, so its sub-union card multiplies the width.
	coords := make([]int32, 0, 2*len(active))
	for _, b := range active {
		for _, sp := range c.dims[b][dim] {
			coords = append(coords, sp.Lo, sp.Hi)
		}
	}
	sort.Slice(coords, func(i, j int) bool { return coords[i] < coords[j] })
	coords = dedupInt32(coords)
	var total int64
	sub := make([]int32, 0, len(active))
	for i := 0; i+1 < len(coords); i++ {
		lo, hi := coords[i], coords[i+1]
		sub = sub[:0]
		for _, b := range active {
			if spanListContains(c.dims[b][dim], lo) {
				sub = append(sub, b)
			}
		}
		if len(sub) == 0 {
			continue
		}
		total += int64(hi-lo) * c.card(sub, dim+1)
	}
	c.memo[key] = total
	return total
}

func (c *sweepCtx) memoKey(active []int32, dim int) string {
	var sb strings.Builder
	sb.Grow(1 + 4*len(active))
	sb.WriteByte(byte(dim))
	for _, b := range active {
		writeInt32(&sb, b)
	}
	return sb.String()
}

func spanCard(spans []vocab.Span) int64 {
	var n int64
	for _, sp := range spans {
		n += int64(sp.Len())
	}
	return n
}

func spanListContains(spans []vocab.Span, p int32) bool {
	i := sort.Search(len(spans), func(i int) bool { return spans[i].Hi > p })
	return i < len(spans) && spans[i].Lo <= p
}

func dedupInt32(a []int32) []int32 {
	out := a[:0]
	for i, v := range a {
		if i == 0 || v != a[i-1] {
			out = append(out, v)
		}
	}
	return out
}
