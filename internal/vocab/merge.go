package vocab

import (
	"fmt"
	"sort"
)

// Merge combines two vocabularies into a new one — the situation
// Audit Management creates when federated sites evolved their
// vocabularies independently (paper §4.2). Values present in both
// must agree on their parent (same position in the hierarchy);
// a disagreement is a structural conflict that must be resolved by
// hand, so Merge reports it as an error rather than guessing.
func Merge(a, b *Vocabulary) (*Vocabulary, error) {
	out := a.Clone()
	for _, attr := range b.Attributes() {
		hb := b.Hierarchy(attr)
		ho := out.Hierarchy(attr)
		if ho == nil {
			var err error
			ho, err = out.AddAttribute(attr)
			if err != nil {
				return nil, err
			}
		}
		var walk func(parent string, n *Node) error
		walk = func(parent string, n *Node) error {
			if existing := ho.Node(n.value); existing != nil {
				ep := ""
				if existing.parent != nil {
					ep = existing.parent.value
				}
				if Norm(ep) != Norm(parent) {
					return fmt.Errorf("vocab: merge conflict on %s/%s: parent %q vs %q",
						attr, n.value, ep, parent)
				}
			} else if err := ho.Add(parent, n.value); err != nil {
				return err
			}
			for _, c := range n.children {
				if err := walk(n.value, c); err != nil {
					return err
				}
			}
			return nil
		}
		for _, r := range hb.Roots() {
			if err := walk("", r); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// Diff lists the (attr, value) pairs present in b but missing from a,
// sorted; useful for reviewing what a merge would introduce.
func Diff(a, b *Vocabulary) []string {
	var out []string
	for _, attr := range b.Attributes() {
		hb := b.Hierarchy(attr)
		ha := a.Hierarchy(attr)
		for _, val := range hb.Values() {
			if ha == nil || !ha.Contains(val) {
				out = append(out, Norm(attr)+"/"+Norm(val))
			}
		}
	}
	sort.Strings(out)
	return out
}

// CoverageTerms verifies that every term of a set of (attr, value)
// pairs is known to the vocabulary; policy and audit imports use it
// to fail fast on vocabulary drift.
func (v *Vocabulary) CoverageTerms(pairs map[string]string) error {
	var missing []string
	for attr, value := range pairs {
		h := v.Hierarchy(attr)
		if h == nil {
			missing = append(missing, Norm(attr)+" (attribute)")
			continue
		}
		if !h.Contains(value) {
			missing = append(missing, Norm(attr)+"/"+Norm(value))
		}
	}
	if len(missing) > 0 {
		sort.Strings(missing)
		return fmt.Errorf("vocab: unknown terms: %v", missing)
	}
	return nil
}
