package policy_test

import (
	"fmt"

	"repro/internal/policy"
	"repro/internal/vocab"
)

// ExampleRule_Groundings expands the paper's example composite rule
// "clerks may see demographic data for billing" into its ground rules
// (Definition 3 applied through Corollary 1).
func ExampleRule_Groundings() {
	v := vocab.Sample()
	r := policy.MustRule(
		policy.T("data", "demographic"),
		policy.T("purpose", "billing"),
		policy.T("authorized", "clerk"),
	)
	grounds, _ := r.Groundings(v, 0)
	for _, g := range grounds {
		fmt.Println(g.Compact())
	}
	// Output:
	// authorized=clerk & data=address & purpose=billing
	// authorized=clerk & data=birthdate & purpose=billing
	// authorized=clerk & data=gender & purpose=billing
	// authorized=clerk & data=phone & purpose=billing
}

// ExampleTerm_Equivalent shows Definition 4's worked example: both
// (data, address) and (data, gender) are equivalent to
// (data, demographic).
func ExampleTerm_Equivalent() {
	v := vocab.Sample()
	rt1 := policy.T("data", "demographic")
	rt2 := policy.T("data", "address")
	rt3 := policy.T("data", "gender")
	fmt.Println(rt2.Equivalent(rt1, v), rt3.Equivalent(rt1, v), rt2.Equivalent(rt3, v))
	// Output: true true false
}

// ExampleParseRule parses the compact rule syntax used by policy
// files and the control center.
func ExampleParseRule() {
	r, _ := policy.ParseRule("data=insurance & purpose=billing & authorized=nurse")
	fmt.Println(r)
	// Output: {(authorized, nurse) ∧ (data, insurance) ∧ (purpose, billing)}
}

// ExampleNewRange computes Range_P (Definition 8) for a small policy.
func ExampleNewRange() {
	v := vocab.Sample()
	p := policy.FromRules("PS",
		policy.MustRule(policy.T("data", "general"), policy.T("purpose", "treatment")),
	)
	rg, _ := policy.NewRange(p, v, 0)
	fmt.Println(rg.Len(), "ground rules")
	// Output: 3 ground rules
}
