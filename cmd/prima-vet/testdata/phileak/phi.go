// Package phileak exercises the PHI taint analyzer: values read from
// prima:phi fields must not reach prints, logs, or error strings
// except through a prima:redact helper.
package phileak

import (
	"fmt"
	"log"
)

// Record is an audit-like row.
type Record struct {
	Name string // prima:phi — patient-identifying
	Op   string
}

// Mask is this package's sanctioned redaction helper.
//
// prima:redact
func Mask(s string) string {
	if s == "" {
		return s
	}
	return s[:1] + "***"
}

func direct(r Record) {
	fmt.Println(r.Name) // want phileak "PHI may reach fmt.Println"
	fmt.Println(r.Op)   // clean: Op is not marked
}

func viaLocal(r Record) {
	name := r.Name
	msg := "user=" + name
	log.Printf("%s", msg) // want phileak "PHI may reach log.Printf"
}

// logName prints its argument; callers passing PHI are flagged at
// their call sites, not here (the parameter itself is not PHI).
func logName(s string) {
	log.Println(s)
}

func interproc(r Record) {
	logName(r.Name) // want phileak "PHI passed to"
}

func redacted(r Record) {
	fmt.Println(Mask(r.Name)) // clean: routed through the redactor
}

func carrier(r Record) {
	fmt.Printf("%v\n", r) // want phileak "PHI may reach fmt.Printf"
}
