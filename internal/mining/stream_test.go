package mining_test

import (
	"reflect"
	"testing"

	"repro/internal/audit"
	"repro/internal/core"
	"repro/internal/mining"
	"repro/internal/scenario"
)

// TestExtractorThroughStreamSession drives the Apriori extractor
// through the streaming session: mining.Extractor is not servable
// from the per-rule group index (that path is the SQL extractor's),
// so the session recognizes it as an IncrementalExtractor and feeds
// persistent epoch state from the log's Delta cursor — producing
// exactly what the sequential session would.
func TestExtractorThroughStreamSession(t *testing.T) {
	if core.IndexExtractable(core.Options{Extractor: mining.Extractor{}}) {
		t.Fatal("mining.Extractor must not be group-index extractable")
	}
	if _, ok := interface{}(mining.Extractor{}).(core.IncrementalExtractor); !ok {
		t.Fatal("mining.Extractor must be incremental")
	}
	if _, ok := interface{}(mining.FPGrowth{}).(core.IncrementalExtractor); !ok {
		t.Fatal("mining.FPGrowth must be incremental")
	}

	v := scenario.Vocabulary()
	opts := core.Options{MinSupport: 3, Extractor: mining.Extractor{}}
	psSeq := scenario.PolicyStore()
	psStream := scenario.PolicyStore()

	l := audit.NewLog("s")
	seq := core.NewSession(psSeq, v, opts)
	stream := core.NewStreamSession(l, psStream, v, opts)

	table := scenario.Table1()
	var cumulative []audit.Entry
	for i, chunk := range [][]audit.Entry{table[:4], table[4:7], table[7:]} {
		cumulative = append(cumulative, chunk...)
		if err := l.Append(chunk...); err != nil {
			t.Fatal(err)
		}
		seqRound, err := seq.Run(cumulative, core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		streamRound, err := stream.Run(core.AdoptAll)
		if err != nil {
			t.Fatal(err)
		}
		var want, got []string
		for _, p := range seqRound.Patterns {
			want = append(want, p.Rule.Key())
		}
		for _, p := range streamRound.Patterns {
			got = append(got, p.Rule.Key())
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("chunk %d: stream %v, seq %v", i, got, want)
		}
		if streamRound.CoverageAfter != seqRound.CoverageAfter {
			t.Fatalf("chunk %d coverage: %v vs %v", i, streamRound.CoverageAfter, seqRound.CoverageAfter)
		}
	}
	if psStream.Len() != psSeq.Len() {
		t.Fatalf("policies diverge: %d vs %d rules", psStream.Len(), psSeq.Len())
	}
}
