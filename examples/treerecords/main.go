// Treerecords: PRIMA's conclusion calls for adapting the core
// concepts to hierarchical, XML-like legacy records. This example
// maps element paths of an XML patient record onto the privacy
// vocabulary and applies the policy store to redact the subtrees a
// requester may not see — the tree-shaped analogue of HDB Active
// Enforcement's column masking.
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/treerec"
)

const record = `
<record id="r-1972">
  <patient>p2</patient>
  <demographics>
    <address>2 Oak Ave</address>
    <gender>f</gender>
  </demographics>
  <clinical>
    <prescription>statins 20mg</prescription>
    <referral>dermatology consult</referral>
    <psychiatry>
      <note>generalized anxiety, CBT referral</note>
    </psychiatry>
  </clinical>
</record>`

func main() {
	v := scenario.Vocabulary()
	ps := scenario.PolicyStore()

	rec, err := treerec.ParseXMLString(record)
	if err != nil {
		log.Fatal(err)
	}

	m := treerec.NewMapping(v)
	for pattern, category := range map[string]string{
		"demographics/address":  "address",
		"demographics/gender":   "gender",
		"clinical/prescription": "prescription",
		"clinical/referral":     "referral",
		"clinical/psychiatry":   "psychiatry",
	} {
		if err := m.Add(pattern, category); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("record carries categories: %v\n\n", m.Classify(rec))

	// Policy decision, reusing the exact coverage machinery: a
	// category is visible when (category, purpose, role) lies in the
	// policy store's range.
	rg, err := policy.NewRange(ps, v, 0)
	if err != nil {
		log.Fatal(err)
	}
	show := func(role, purpose string) {
		allowed := func(category string) bool {
			return rg.Contains(policy.MustRule(
				policy.T("data", category),
				policy.T("purpose", purpose),
				policy.T("authorized", role),
			))
		}
		red := m.Redact(rec, allowed)
		fmt.Printf("--- view for %s / %s (kept: %v, redacted: %d subtrees)\n",
			role, purpose, red.Kept, len(red.Removed))
		if err := red.Record.WriteXML(os.Stdout); err != nil {
			log.Fatal(err)
		}
		fmt.Println()
	}

	show("nurse", "treatment")        // sees prescription + referral, no psychiatry, no demographics
	show("psychiatrist", "treatment") // sees psychiatry only
	show("clerk", "billing")          // sees demographics only
}
