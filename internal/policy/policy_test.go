package policy

import (
	"fmt"
	"reflect"
	"testing"
	"testing/quick"

	"repro/internal/vocab"
)

func sampleVocab() *vocab.Vocabulary { return vocab.Sample() }

func TestTermBasics(t *testing.T) {
	tm := T("data", "demographic")
	if tm.String() != "(data, demographic)" {
		t.Errorf("String() = %q", tm.String())
	}
	if tm.Key() != "data=demographic" {
		t.Errorf("Key() = %q", tm.Key())
	}
	v := sampleVocab()
	if tm.IsGround(v) {
		t.Error("demographic should be composite") // Definition 2
	}
	if !T("data", "gender").IsGround(v) {
		t.Error("gender should be ground")
	}
}

func TestTermGroundTerms(t *testing.T) {
	v := sampleVocab()
	got := T("data", "demographic").GroundTerms(v)
	want := []Term{
		{Attr: "data", Value: "address"},
		{Attr: "data", Value: "birthdate"},
		{Attr: "data", Value: "gender"},
		{Attr: "data", Value: "phone"},
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("GroundTerms = %v, want %v", got, want)
	}
}

func TestTermEquivalence(t *testing.T) {
	v := sampleVocab()
	// Definition 4 examples from §3.1.
	if !T("data", "address").Equivalent(T("data", "demographic"), v) {
		t.Error("RT2 should be equivalent to RT1")
	}
	if !T("data", "gender").Equivalent(T("data", "demographic"), v) {
		t.Error("RT3 should be equivalent to RT1")
	}
	if T("data", "address").Equivalent(T("purpose", "address"), v) {
		t.Error("terms with different attributes cannot be equivalent")
	}
	if T("data", "address").Equivalent(T("data", "gender"), v) {
		t.Error("disjoint ground terms are not equivalent")
	}
}

func TestNewRuleNormalization(t *testing.T) {
	r := MustRule(T("purpose", "billing"), T("data", "insurance"), T("authorized", "nurse"))
	if r.Len() != 3 {
		t.Fatalf("Len = %d", r.Len())
	}
	// Terms sorted by attribute.
	if r.Terms()[0].Attr != "authorized" || r.Terms()[1].Attr != "data" {
		t.Errorf("terms not normalized: %v", r.Terms())
	}
	// Exact duplicates collapse.
	r2 := MustRule(T("data", "x"), T("Data", "X"))
	if r2.Len() != 1 {
		t.Errorf("duplicate terms not collapsed: %v", r2)
	}
}

func TestNewRuleErrors(t *testing.T) {
	if _, err := NewRule(); err == nil {
		t.Error("empty rule accepted (Definition 5 requires n ≥ 1)")
	}
	if _, err := NewRule(T("", "x")); err == nil {
		t.Error("empty attribute accepted")
	}
	if _, err := NewRule(T("a", "")); err == nil {
		t.Error("empty value accepted")
	}
	if _, err := NewRule(T("data", "x"), T("data", "y")); err == nil {
		t.Error("conflicting assignments for one attribute accepted")
	}
}

func TestRuleStringAndKey(t *testing.T) {
	r := MustRule(T("data", "insurance"), T("purpose", "billing"), T("authorized", "nurse"))
	want := "{(authorized, nurse) ∧ (data, insurance) ∧ (purpose, billing)}"
	if r.String() != want {
		t.Errorf("String = %q, want %q", r.String(), want)
	}
	if r.Key() != "authorized=nurse&data=insurance&purpose=billing" {
		t.Errorf("Key = %q", r.Key())
	}
}

func TestRuleValueAndProject(t *testing.T) {
	r := MustRule(T("data", "referral"), T("purpose", "treatment"), T("authorized", "nurse"))
	if v, ok := r.Value("Purpose"); !ok || v != "treatment" {
		t.Errorf("Value(Purpose) = %q, %v", v, ok)
	}
	if _, ok := r.Value("nope"); ok {
		t.Error("Value(nope) should be absent")
	}
	p := r.Project("data", "authorized")
	if p.Len() != 2 {
		t.Errorf("Project kept %d terms", p.Len())
	}
	if _, ok := p.Value("purpose"); ok {
		t.Error("Project kept excluded attribute")
	}
	if !r.Project("zzz").IsZero() {
		t.Error("Project with no matches should be zero")
	}
}

func TestGroundings(t *testing.T) {
	v := sampleVocab()
	r := MustRule(T("data", "demographic"), T("purpose", "billing"), T("authorized", "clerk"))
	gs, truncated := r.Groundings(v, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	if len(gs) != 4 { // 4 demographic leaves × 1 × 1
		t.Fatalf("got %d groundings, want 4: %v", len(gs), gs)
	}
	for _, g := range gs {
		if !g.IsGround(v) {
			t.Errorf("grounding %v is not ground", g)
		}
		if g.Len() != r.Len() {
			t.Errorf("grounding cardinality changed: %v", g)
		}
		if !r.Equivalent(g, v) {
			t.Errorf("rule not equivalent to its own grounding %v", g)
		}
		if !r.Covers(g, v) {
			t.Errorf("rule does not cover its own grounding %v", g)
		}
	}
}

func TestGroundingsLimit(t *testing.T) {
	v := sampleVocab()
	r := MustRule(T("data", "phi"), T("purpose", "healthcare"), T("authorized", "medical_staff"))
	all, truncated := r.Groundings(v, 0)
	if truncated {
		t.Fatal("unexpected truncation")
	}
	want := 11 * 3 * 4 // phi leaves × healthcare leaves × medical_staff leaves
	if len(all) != want {
		t.Fatalf("got %d groundings, want %d", len(all), want)
	}
	few, truncated := r.Groundings(v, 5)
	if !truncated || len(few) != 5 {
		t.Errorf("limit=5: got %d rules, truncated=%v", len(few), truncated)
	}
	exact, truncated := r.Groundings(v, want)
	if truncated || len(exact) != want {
		t.Errorf("limit=total: got %d rules, truncated=%v", len(exact), truncated)
	}
}

func TestRuleEquivalenceDefinition6(t *testing.T) {
	v := sampleVocab()
	a := MustRule(T("data", "address"), T("purpose", "billing"))
	b := MustRule(T("data", "demographic"), T("purpose", "billing"))
	c := MustRule(T("data", "address"), T("purpose", "billing"), T("authorized", "clerk"))
	d := MustRule(T("data", "referral"), T("purpose", "billing"))
	if !a.Equivalent(b, v) || !b.Equivalent(a, v) {
		t.Error("a ≈ b expected (address within demographic)")
	}
	if a.Equivalent(c, v) {
		t.Error("different cardinalities cannot be equivalent")
	}
	if a.Equivalent(d, v) {
		t.Error("address ≈ referral is false")
	}
}

func TestCovers(t *testing.T) {
	v := sampleVocab()
	comp := MustRule(T("data", "clinical"), T("purpose", "treatment"), T("authorized", "nurse"))
	g1 := MustRule(T("data", "referral"), T("purpose", "treatment"), T("authorized", "nurse"))
	g2 := MustRule(T("data", "referral"), T("purpose", "registration"), T("authorized", "nurse"))
	if !comp.Covers(g1, v) {
		t.Error("clinical/treatment/nurse should cover referral/treatment/nurse")
	}
	if comp.Covers(g2, v) {
		t.Error("purpose mismatch must not be covered")
	}
	short := MustRule(T("data", "clinical"))
	if short.Covers(g1, v) {
		t.Error("cardinality mismatch must not be covered")
	}
}

func TestPolicyAddRemoveContains(t *testing.T) {
	p := New("PS")
	r1 := MustRule(T("data", "a"), T("purpose", "b"))
	r2 := MustRule(T("data", "c"), T("purpose", "d"))
	if !p.Add(r1) || !p.Add(r2) {
		t.Fatal("adds failed")
	}
	if p.Add(r1) {
		t.Error("duplicate add succeeded")
	}
	if p.Add(Rule{}) {
		t.Error("zero rule accepted")
	}
	if p.Len() != 2 || !p.Contains(r1) {
		t.Errorf("unexpected state: %v", p)
	}
	if !p.Remove(r1) || p.Contains(r1) || p.Len() != 1 {
		t.Error("remove failed")
	}
	if p.Remove(r1) {
		t.Error("second remove succeeded")
	}
}

func TestPolicyCloneIndependence(t *testing.T) {
	p := FromRules("PS", MustRule(T("a", "b")))
	c := p.Clone()
	c.Add(MustRule(T("c", "d")))
	if p.Len() != 1 || c.Len() != 2 {
		t.Errorf("clone not independent: p=%d c=%d", p.Len(), c.Len())
	}
}

func TestPolicyIsGround(t *testing.T) {
	v := sampleVocab()
	g := FromRules("AL", MustRule(T("data", "address")))
	if !g.IsGround(v) {
		t.Error("ground policy misclassified")
	}
	comp := FromRules("PS", MustRule(T("data", "demographic")))
	if comp.IsGround(v) {
		t.Error("composite policy misclassified")
	}
}

// Property (quick): rule construction is permutation-invariant — any
// ordering of the same terms yields the same canonical key — and
// normalization is idempotent.
func TestRuleNormalizationProperties(t *testing.T) {
	attrs := []string{"data", "purpose", "authorized", "op", "site"}
	f := func(perm uint8, n uint8, seed uint8) bool {
		count := int(n%4) + 2
		terms := make([]Term, count)
		for i := range terms {
			terms[i] = T(attrs[i%len(attrs)], string(rune('a'+(int(seed)+i)%6)))
		}
		r1, err := NewRule(terms...)
		if err != nil {
			return false
		}
		// Rotate and swap to get a different ordering.
		rot := int(perm) % count
		shuffled := append(append([]Term{}, terms[rot:]...), terms[:rot]...)
		r2, err := NewRule(shuffled...)
		if err != nil {
			return false
		}
		if r1.Key() != r2.Key() {
			return false
		}
		// Rebuilding from the normalized terms changes nothing.
		r3, err := NewRule(r1.Terms()...)
		if err != nil {
			return false
		}
		return r3.Key() == r1.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property (quick): Compact/ParseRule round-trips any rule built from
// identifier-safe terms.
func TestCompactRoundTripProperty(t *testing.T) {
	f := func(a, b, c uint8) bool {
		r := MustRule(
			T("data", fmt.Sprintf("d%d", a%16)),
			T("purpose", fmt.Sprintf("p%d", b%16)),
			T("authorized", fmt.Sprintf("r%d", c%16)),
		)
		back, err := ParseRule(r.Compact())
		return err == nil && back.Key() == r.Key()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
