package hdb

import (
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/audit"
	"repro/internal/consent"
	"repro/internal/minidb"
	"repro/internal/policy"
	"repro/internal/scenario"
	"repro/internal/vocab"
)

// side is one independently seeded enforcement stack for differential
// fast-vs-slow testing.
type side struct {
	enf *Enforcer
	ps  *policy.Policy
	v   *vocab.Vocabulary
	cs  *consent.Store
	log *audit.Log
	db  *minidb.Database
}

// newSide builds a full stack identical to fixture() but returning
// every layer, with the fast path set as requested. Both sides of a
// differential test get the same stepping clock, so audit timestamps
// line up entry for entry.
func newSide(t testing.TB, fast bool) *side {
	t.Helper()
	db := minidb.NewDatabase()
	db.MustExec(`CREATE TABLE records (
		patient TEXT, address TEXT, prescription TEXT, referral TEXT, psychiatry TEXT
	)`)
	db.MustExec(`INSERT INTO records VALUES
		('p1', '1 Elm St',  'aspirin',  'cardio',  'none'),
		('p2', '2 Oak Ave', 'statins',  'derm',    'anxiety'),
		('p3', '3 Pine Rd', 'insulin',  'endo',    'none')`)
	v := vocab.Sample()
	ps := scenario.PolicyStore()
	cs := consent.NewStore(v, true)
	log := audit.NewLog("clinic")
	enf := New(db, ps, v, cs, log)
	enf.SetFastPath(fast)
	step := 0
	enf.SetClock(func() time.Time { step++; return t0.Add(time.Duration(step) * time.Second) })
	if err := enf.RegisterTable(TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{
			"address":      "address",
			"prescription": "prescription",
			"referral":     "referral",
			"psychiatry":   "psychiatry",
		},
	}); err != nil {
		t.Fatal(err)
	}
	return &side{enf: enf, ps: ps, v: v, cs: cs, log: log, db: db}
}

// diffStep is one entry in the differential battery: an optional
// mutation applied to both sides, then (when sql is set) a query run
// on both with every observable compared.
type diffStep struct {
	name       string
	mutate     func(t *testing.T, s *side)
	p          Principal
	purpose    string
	sql        string
	reason     string
	breakGlass bool
}

func runDiff(t *testing.T, steps []diffStep) {
	t.Helper()
	fastS := newSide(t, true)
	slowS := newSide(t, false)
	for _, st := range steps {
		if st.mutate != nil {
			st.mutate(t, fastS)
			st.mutate(t, slowS)
		}
		if st.sql == "" {
			continue
		}
		var fr, sr *minidb.Result
		var fa, sa *Access
		var fe, se error
		if st.breakGlass {
			fr, fa, fe = fastS.enf.BreakGlass(st.p, st.purpose, st.reason, st.sql)
			sr, sa, se = slowS.enf.BreakGlass(st.p, st.purpose, st.reason, st.sql)
		} else {
			fr, fa, fe = fastS.enf.Query(st.p, st.purpose, st.sql)
			sr, sa, se = slowS.enf.Query(st.p, st.purpose, st.sql)
		}
		if (fe == nil) != (se == nil) {
			t.Fatalf("%s: fast err = %v, slow err = %v", st.name, fe, se)
		}
		if fe != nil && fe.Error() != se.Error() {
			t.Errorf("%s: error text diverged\nfast: %s\nslow: %s", st.name, fe, se)
		}
		if !reflect.DeepEqual(fr, sr) {
			t.Errorf("%s: results diverged\nfast: %+v\nslow: %+v", st.name, fr, sr)
		}
		if !reflect.DeepEqual(fa, sa) {
			t.Errorf("%s: access diverged\nfast: %+v\nslow: %+v", st.name, fa, sa)
		}
	}
	// The audit trails must agree entry for entry (timestamps come
	// from the twin stepping clocks, so even those line up).
	fl, sl := fastS.log.Snapshot(), slowS.log.Snapshot()
	if !reflect.DeepEqual(fl, sl) {
		t.Errorf("audit trails diverged\nfast: %+v\nslow: %+v", fl, sl)
	}
}

// TestDifferentialFastSlow drives the same scripted battery through a
// fast-path and a slow-path stack, asserting byte-identical results,
// Access reports, error text, and audit trails across allow, mask,
// deny, consent, break-glass, star expansion, strict mode, composite
// values, and mid-sequence policy/vocabulary/consent mutation.
func TestDifferentialFastSlow(t *testing.T) {
	psychRule := policy.MustRule(
		policy.T("data", "psychiatry"),
		policy.T("purpose", "billing"),
		policy.T("authorized", "clerk"),
	)
	nurseRule := policy.MustRule(
		policy.T("data", "general"),
		policy.T("purpose", "treatment"),
		policy.T("authorized", "nurse"),
	)
	steps := []diffStep{
		{name: "allow", p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records`},
		{name: "mask", p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral, psychiatry FROM records`},
		{name: "mask warm", p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral, psychiatry FROM records`},
		{name: "full deny", p: clerk(), purpose: "billing",
			sql: `SELECT psychiatry FROM records`},
		{name: "where deny", p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records WHERE psychiatry = 'anxiety'`},
		{name: "order-by deny", p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records ORDER BY psychiatry`},
		{name: "star", p: nurse(), purpose: "treatment",
			sql: `SELECT * FROM records`},
		{name: "composite purpose", p: nurse(), purpose: "healthcare",
			sql: `SELECT patient, referral FROM records`},
		{name: "composite role", p: Principal{User: "sam", Role: "medical_staff"},
			purpose: "treatment", sql: `SELECT patient, referral FROM records`},
		{name: "unknown role", p: Principal{User: "eve", Role: "visitor"},
			purpose: "treatment", sql: `SELECT patient, referral FROM records`},
		{name: "break glass", p: clerk(), purpose: "billing", reason: "emergency",
			breakGlass: true, sql: `SELECT patient, psychiatry FROM records`},
		{name: "consent filter",
			mutate: func(t *testing.T, s *side) {
				if err := s.cs.Set("p2", "referral", "", consent.OptOut, t0); err != nil {
					t.Fatal(err)
				}
			},
			p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records`},
		{name: "consent revoked",
			mutate: func(t *testing.T, s *side) {
				if n := s.cs.Revoke("p2"); n != 1 {
					t.Fatalf("Revoke = %d", n)
				}
			},
			p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records`},
		{name: "policy add",
			mutate: func(t *testing.T, s *side) {
				if !s.ps.Add(psychRule) {
					t.Fatal("Add returned false")
				}
			},
			p: clerk(), purpose: "billing",
			sql: `SELECT psychiatry FROM records`},
		{name: "policy remove",
			mutate: func(t *testing.T, s *side) {
				if !s.ps.Remove(nurseRule) {
					t.Fatal("Remove returned false")
				}
			},
			p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records`},
		{name: "policy restore",
			mutate: func(t *testing.T, s *side) {
				if !s.ps.Add(nurseRule) {
					t.Fatal("Add returned false")
				}
			},
			p: nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records`},
		{name: "strict unknown purpose",
			mutate: func(t *testing.T, s *side) { s.enf.SetStrictVocabulary(true) },
			p:      nurse(), purpose: "triage",
			sql: `SELECT patient, referral FROM records`},
		{name: "strict after vocab add",
			mutate: func(t *testing.T, s *side) {
				if err := s.v.Hierarchy("purpose").Add("healthcare", "triage"); err != nil {
					t.Fatal(err)
				}
			},
			p: nurse(), purpose: "triage",
			sql: `SELECT patient, referral FROM records`},
		{name: "strict off again",
			mutate: func(t *testing.T, s *side) { s.enf.SetStrictVocabulary(false) },
			p:      nurse(), purpose: "treatment",
			sql: `SELECT patient, referral FROM records`},
		{name: "parse error", p: nurse(), purpose: "treatment",
			sql: `SELEC patient FROM records`},
		{name: "unknown table", p: nurse(), purpose: "treatment",
			sql: `SELECT x FROM nowhere`},
		{name: "non-select", p: nurse(), purpose: "treatment",
			sql: `INSERT INTO records VALUES ('p4','a','b','c','d')`},
		{name: "blank purpose", p: nurse(), purpose: "   ",
			sql: `SELECT patient FROM records`},
	}
	runDiff(t, steps)
}

// TestSnapshotInvalidation checks that the RCU snapshot is reused
// while nothing changes and rebuilt on each version bump.
func TestSnapshotInvalidation(t *testing.T) {
	s := newSide(t, true)
	q := func() { // any enforced query forces a snapshot
		if _, _, err := s.enf.Query(nurse(), "treatment", `SELECT patient, referral FROM records`); err != nil {
			t.Fatal(err)
		}
	}
	q()
	s1 := s.enf.snap.Load()
	if s1 == nil {
		t.Fatal("no snapshot after query")
	}
	q()
	if s.enf.snap.Load() != s1 {
		t.Error("snapshot rebuilt without any mutation")
	}

	s.ps.Add(policy.MustRule(
		policy.T("data", "payment_history"),
		policy.T("purpose", "billing"),
		policy.T("authorized", "manager"),
	))
	q()
	s2 := s.enf.snap.Load()
	if s2 == s1 {
		t.Error("policy mutation did not rebuild the snapshot")
	}

	if err := s.v.Hierarchy("data").Add("financial", "copay"); err != nil {
		t.Fatal(err)
	}
	q()
	s3 := s.enf.snap.Load()
	if s3 == s2 {
		t.Error("vocabulary mutation did not rebuild the snapshot")
	}

	if err := s.cs.Set("p1", "address", "", consent.OptOut, t0); err != nil {
		t.Fatal(err)
	}
	q()
	if s.enf.snap.Load() == s3 {
		t.Error("consent mutation did not rebuild the snapshot")
	}
}

// TestSnapshotExpiryHorizon checks that a consent record expiring in
// real time invalidates the snapshot without any store mutation.
func TestSnapshotExpiryHorizon(t *testing.T) {
	s := newSide(t, true)
	now := time.Now()
	if err := s.cs.SetWithExpiry("p2", "referral", "", consent.OptOut,
		now.Add(-time.Minute), now.Add(120*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	res, acc, err := s.enf.Query(nurse(), "treatment", `SELECT patient, referral FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if acc.OptedOut != 1 || len(res.Rows) != 2 {
		t.Fatalf("pre-expiry: optedOut = %d, rows = %d", acc.OptedOut, len(res.Rows))
	}
	time.Sleep(200 * time.Millisecond)
	res, acc, err = s.enf.Query(nurse(), "treatment", `SELECT patient, referral FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if acc.OptedOut != 0 || len(res.Rows) != 3 {
		t.Errorf("post-expiry: optedOut = %d, rows = %d; snapshot outlived its horizon", acc.OptedOut, len(res.Rows))
	}
}

// TestPlanInvalidation checks the plan cache against mapping and
// schema generations.
func TestPlanInvalidation(t *testing.T) {
	s := newSide(t, true)
	const q = `SELECT * FROM records`
	res, _, err := s.enf.Query(nurse(), "treatment", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 5 {
		t.Fatalf("columns = %v", res.Columns)
	}
	// Re-registering the mapping must recompile plans.
	if err := s.enf.RegisterTable(TableMapping{
		Table:      "records",
		PatientCol: "patient",
		Categories: map[string]string{"referral": "referral"},
	}); err != nil {
		t.Fatal(err)
	}
	_, acc, err := s.enf.Query(nurse(), "treatment", q)
	if err != nil {
		t.Fatal(err)
	}
	// Only referral is categorized now; psychiatry et al. pass through.
	if len(acc.Categories) != 1 || acc.Categories[0] != "referral" {
		t.Errorf("post-remap categories = %v", acc.Categories)
	}
	// Schema change (drop + recreate) must invalidate compiled star
	// expansion.
	if err := s.db.DropTable("records"); err != nil {
		t.Fatal(err)
	}
	s.db.MustExec(`CREATE TABLE records (patient TEXT, referral TEXT)`)
	s.db.MustExec(`INSERT INTO records VALUES ('p1', 'cardio')`)
	res, _, err = s.enf.Query(nurse(), "treatment", q)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Columns) != 2 {
		t.Errorf("post-schema-change columns = %v", res.Columns)
	}
}

// TestPlanCacheBound floods the cache past planCacheMax and checks the
// wholesale sweep leaves enforcement correct.
func TestPlanCacheBound(t *testing.T) {
	if testing.Short() {
		t.Skip("floods the plan cache")
	}
	s := newSide(t, true)
	for i := 0; i < planCacheMax+4; i++ {
		sql := fmt.Sprintf(`SELECT patient, referral FROM records LIMIT %d`, i+1)
		if _, _, err := s.enf.Query(nurse(), "treatment", sql); err != nil {
			t.Fatal(err)
		}
	}
	if n := s.enf.planN.Load(); n > planCacheMax {
		t.Errorf("plan count %d exceeds bound %d", n, planCacheMax)
	}
	res, acc, err := s.enf.Query(nurse(), "treatment", `SELECT patient, referral, psychiatry FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 || len(acc.Masked) != 1 {
		t.Errorf("post-sweep rows = %d, masked = %v", len(res.Rows), acc.Masked)
	}
}

// TestFlushPlans checks the administrative flush leaves a working
// (cold) fast path.
func TestFlushPlans(t *testing.T) {
	s := newSide(t, true)
	if _, _, err := s.enf.Query(nurse(), "treatment", `SELECT patient, referral FROM records`); err != nil {
		t.Fatal(err)
	}
	s.enf.FlushPlans()
	if s.enf.snap.Load() != nil {
		t.Error("flush left a snapshot")
	}
	res, _, err := s.enf.Query(nurse(), "treatment", `SELECT patient, referral FROM records`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Errorf("rows = %d", len(res.Rows))
	}
}
