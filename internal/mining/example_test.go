package mining_test

import (
	"fmt"

	"repro/internal/mining"
)

// ExampleApriori mines frequent itemsets from audit-style
// transactions (Agrawal & Srikant, the paper's reference [18]).
func ExampleApriori() {
	mk := func(vals ...string) mining.Transaction {
		items := make([]mining.Item, 0, len(vals)/2)
		for i := 0; i < len(vals); i += 2 {
			items = append(items, mining.Item{Attr: vals[i], Value: vals[i+1]})
		}
		return mining.NewItemset(items...)
	}
	txs := []mining.Transaction{
		mk("data", "referral", "authorized", "nurse"),
		mk("data", "referral", "authorized", "nurse"),
		mk("data", "referral", "authorized", "clerk"),
	}
	res, _ := mining.Apriori(txs, 2)
	for _, f := range res.Frequent {
		fmt.Printf("%s support=%d\n", f.Items, f.Support)
	}
	// Output:
	// {authorized=nurse} support=2
	// {data=referral} support=3
	// {authorized=nurse, data=referral} support=2
}
