// Package minidb is a small, embedded, in-memory relational engine
// with a SQL subset. It stands in for the clinical database and the
// DB2 backend of the paper's first PRIMA instantiation: the policy
// refinement dataAnalysis routine (Algorithm 5) is specified as a SQL
// GROUP BY / HAVING statement and is executed verbatim against this
// engine, and the HDB Active Enforcement middleware (paper Figure 5)
// rewrites queries destined for it.
//
// Supported statements: CREATE TABLE, DROP TABLE, INSERT, SELECT
// (WHERE, GROUP BY, HAVING, ORDER BY, LIMIT/OFFSET, DISTINCT,
// aggregates COUNT/COUNT(DISTINCT)/SUM/AVG/MIN/MAX), UPDATE, DELETE.
package minidb

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Kind enumerates the runtime types of values.
type Kind int

// Value kinds.
const (
	KindNull Kind = iota
	KindBool
	KindInt
	KindFloat
	KindText
	KindTime
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindBool:
		return "BOOL"
	case KindInt:
		return "INT"
	case KindFloat:
		return "FLOAT"
	case KindText:
		return "TEXT"
	case KindTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a SQL value: one of NULL, BOOL, INT, FLOAT, TEXT, TIMESTAMP.
type Value struct {
	kind Kind
	b    bool
	i    int64
	f    float64
	s    string
	t    time.Time
}

// Constructors.

// Null returns the NULL value.
func Null() Value { return Value{kind: KindNull} }

// Bool returns a BOOL value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an INT value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Float returns a FLOAT value.
func Float(f float64) Value { return Value{kind: KindFloat, f: f} }

// Text returns a TEXT value.
func Text(s string) Value { return Value{kind: KindText, s: s} }

// Time returns a TIMESTAMP value.
func Time(t time.Time) Value { return Value{kind: KindTime, t: t} }

// Kind returns the value's kind.
func (v Value) Kind() Kind { return v.kind }

// IsNull reports whether the value is NULL.
func (v Value) IsNull() bool { return v.kind == KindNull }

// AsBool returns the boolean payload (valid only for KindBool).
func (v Value) AsBool() bool { return v.b }

// AsInt returns the integer payload, coercing FLOAT and BOOL.
func (v Value) AsInt() int64 {
	switch v.kind {
	case KindInt:
		return v.i
	case KindFloat:
		return int64(v.f)
	case KindBool:
		if v.b {
			return 1
		}
		return 0
	default:
		return 0
	}
}

// AsFloat returns the numeric payload as float64.
func (v Value) AsFloat() float64 {
	switch v.kind {
	case KindFloat:
		return v.f
	case KindInt:
		return float64(v.i)
	default:
		return 0
	}
}

// AsText returns the string payload; non-text kinds are rendered.
func (v Value) AsText() string {
	if v.kind == KindText {
		return v.s
	}
	return v.String()
}

// AsTime returns the timestamp payload (valid only for KindTime).
func (v Value) AsTime() time.Time { return v.t }

// String renders the value for display.
func (v Value) String() string {
	switch v.kind {
	case KindNull:
		return "NULL"
	case KindBool:
		if v.b {
			return "TRUE"
		}
		return "FALSE"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindFloat:
		return strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return v.s
	case KindTime:
		return v.t.UTC().Format(time.RFC3339Nano)
	default:
		return "?"
	}
}

// key returns a canonical representation used for grouping, DISTINCT
// and IN-set membership. Numeric values that are equal compare to the
// same key.
func (v Value) key() string {
	switch v.kind {
	case KindNull:
		return "n"
	case KindBool:
		if v.b {
			return "b1"
		}
		return "b0"
	case KindInt:
		return "f" + strconv.FormatFloat(float64(v.i), 'g', -1, 64)
	case KindFloat:
		return "f" + strconv.FormatFloat(v.f, 'g', -1, 64)
	case KindText:
		return "s" + v.s
	case KindTime:
		return "t" + strconv.FormatInt(v.t.UnixNano(), 10)
	default:
		return "?"
	}
}

func (v Value) isNumeric() bool { return v.kind == KindInt || v.kind == KindFloat }

// compare returns -1, 0, or 1, with ok=false when the values are not
// comparable (including any NULL operand).
func compare(a, b Value) (int, bool) {
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	switch {
	case a.isNumeric() && b.isNumeric():
		af, bf := a.AsFloat(), b.AsFloat()
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	case a.kind == KindText && b.kind == KindText:
		return strings.Compare(a.s, b.s), true
	case a.kind == KindTime && b.kind == KindTime:
		switch {
		case a.t.Before(b.t):
			return -1, true
		case a.t.After(b.t):
			return 1, true
		default:
			return 0, true
		}
	case a.kind == KindBool && b.kind == KindBool:
		switch {
		case a.b == b.b:
			return 0, true
		case !a.b:
			return -1, true
		default:
			return 1, true
		}
	// Text/time interoperability: timestamps are often written as
	// string literals in queries.
	case a.kind == KindTime && b.kind == KindText:
		if bt, err := parseTimeLiteral(b.s); err == nil {
			return compare(a, Time(bt))
		}
		return 0, false
	case a.kind == KindText && b.kind == KindTime:
		if at, err := parseTimeLiteral(a.s); err == nil {
			return compare(Time(at), b)
		}
		return 0, false
	default:
		return 0, false
	}
}

func parseTimeLiteral(s string) (time.Time, error) {
	for _, layout := range []string{time.RFC3339Nano, time.RFC3339, "2006-01-02 15:04:05", "2006-01-02"} {
		if t, err := time.Parse(layout, s); err == nil {
			return t, nil
		}
	}
	return time.Time{}, fmt.Errorf("minidb: cannot parse %q as timestamp", s)
}

// ColumnType is a declared column type.
type ColumnType int

// Column types accepted by CREATE TABLE.
const (
	TypeInt ColumnType = iota
	TypeFloat
	TypeText
	TypeBool
	TypeTime
)

// String names the column type in SQL.
func (t ColumnType) String() string {
	switch t {
	case TypeInt:
		return "INT"
	case TypeFloat:
		return "FLOAT"
	case TypeText:
		return "TEXT"
	case TypeBool:
		return "BOOL"
	case TypeTime:
		return "TIMESTAMP"
	default:
		return fmt.Sprintf("ColumnType(%d)", int(t))
	}
}

// coerce converts v for storage into a column of type t.
func coerce(v Value, t ColumnType) (Value, error) {
	if v.IsNull() {
		return v, nil
	}
	switch t {
	case TypeInt:
		switch v.kind {
		case KindInt:
			return v, nil
		case KindFloat:
			return Int(int64(v.f)), nil
		case KindBool:
			return Int(v.AsInt()), nil
		}
	case TypeFloat:
		if v.isNumeric() {
			return Float(v.AsFloat()), nil
		}
	case TypeText:
		if v.kind == KindText {
			return v, nil
		}
		return Text(v.String()), nil
	case TypeBool:
		if v.kind == KindBool {
			return v, nil
		}
		if v.kind == KindInt {
			return Bool(v.i != 0), nil
		}
	case TypeTime:
		if v.kind == KindTime {
			return v, nil
		}
		if v.kind == KindText {
			t, err := parseTimeLiteral(v.s)
			if err != nil {
				return Value{}, err
			}
			return Time(t), nil
		}
	}
	return Value{}, fmt.Errorf("minidb: cannot store %s value %s in %s column", v.kind, v, t)
}
