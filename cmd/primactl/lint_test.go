package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

const lintVocab = `data
  clinical
    lab_result
    prescription
  referral
purpose
  treatment
  billing
authorized
  nurse
  doctor
`

// writeLintFixtures materializes a vocabulary plus a clean and a
// dirty policy for the lint command.
func writeLintFixtures(t *testing.T) (vocabFile, cleanPolicy, dirtyPolicy string) {
	t.Helper()
	dir := t.TempDir()
	vocabFile = filepath.Join(dir, "vocab.txt")
	if err := os.WriteFile(vocabFile, []byte(lintVocab), 0o644); err != nil {
		t.Fatal(err)
	}
	cleanPolicy = filepath.Join(dir, "clean.txt")
	clean := `data=clinical & purpose=treatment & authorized=nurse
data=referral & purpose=billing & authorized=doctor
`
	if err := os.WriteFile(cleanPolicy, []byte(clean), 0o644); err != nil {
		t.Fatal(err)
	}
	dirtyPolicy = filepath.Join(dir, "dirty.txt")
	// Rule 2 is subsumed by rule 1 (Def. 8); rule 3 uses an unknown
	// value; billing/doctor/referral subtrees stay unreachable.
	dirty := `data=clinical & purpose=treatment & authorized=nurse
data=lab_result & purpose=treatment & authorized=nurse
data=xray & purpose=treatment & authorized=nurse
`
	if err := os.WriteFile(dirtyPolicy, []byte(dirty), 0o644); err != nil {
		t.Fatal(err)
	}
	return vocabFile, cleanPolicy, dirtyPolicy
}

func TestLintCleanPolicy(t *testing.T) {
	vocabFile, clean, _ := writeLintFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"lint", "-vocab", vocabFile, "-policy", clean})
	})
	if err != nil {
		t.Fatalf("clean policy: %v\n%s", err, out)
	}
	if exitCode(err) != 0 {
		t.Errorf("exit code = %d, want 0", exitCode(err))
	}
	if !strings.Contains(out, "0 finding(s)") {
		t.Errorf("output:\n%s", out)
	}
}

func TestLintFindingsExitOne(t *testing.T) {
	vocabFile, _, dirty := writeLintFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"lint", "-vocab", vocabFile, "-policy", dirty})
	})
	if err == nil {
		t.Fatalf("dirty policy accepted:\n%s", out)
	}
	if exitCode(err) != 1 {
		t.Errorf("exit code = %d, want 1 (%v)", exitCode(err), err)
	}
	for _, want := range []string{lint.SubsumedRule, lint.UnknownValue, lint.UnreachableSubtree} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %s:\n%s", want, out)
		}
	}
}

func TestLintJSON(t *testing.T) {
	vocabFile, _, dirty := writeLintFixtures(t)
	out, err := capture(t, func() error {
		return run([]string{"lint", "-vocab", vocabFile, "-policy", dirty, "-json"})
	})
	if exitCode(err) != 1 {
		t.Fatalf("exit code = %d, want 1", exitCode(err))
	}
	var rep lint.Report
	if err := json.Unmarshal([]byte(out), &rep); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out)
	}
	if rep.Rules != 3 || len(rep.Findings) == 0 {
		t.Errorf("report: %+v", rep)
	}
	counts := rep.Counts()
	if counts[lint.SubsumedRule] != 1 || counts[lint.UnknownValue] != 1 {
		t.Errorf("counts: %v", counts)
	}
}

func TestLintUsageErrorsExitTwo(t *testing.T) {
	vocabFile, clean, _ := writeLintFixtures(t)
	cases := [][]string{
		{"lint"},                             // missing -policy
		{"lint", "-policy", "/no/such/file"}, // unreadable policy
		{"lint", "-vocab", "/no/such", "-policy", clean}, // unreadable vocab
		{"lint", "-bogus-flag"},                          // flag error
		{"lint", "-vocab", vocabFile},                    // still missing -policy
	}
	for _, args := range cases {
		_, err := capture(t, func() error { return run(args) })
		if exitCode(err) != 2 {
			t.Errorf("run(%v): exit code = %d, want 2 (%v)", args, exitCode(err), err)
		}
	}
}

func TestExitCodeMapping(t *testing.T) {
	if exitCode(nil) != 0 {
		t.Error("nil error should exit 0")
	}
	if exitCode(os.ErrNotExist) != 1 {
		t.Error("plain errors should exit 1")
	}
}
